(* The scheduler queue structures (§5.1, §6.2): the unsorted EDF list,
   the sorted RM list with the highestp pointer and the place-holder
   priority-inheritance tricks, and the heap variant. *)

open Alcotest
open Emeralds
open Emeralds.Types

let qtest ?(count = 300) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let make_tcbs n = Array.init n (fun i -> Mock.tcb ~tid:i ~prio:i ())

(* ------------------------------------------------------------------ *)
(* EDF queue *)

let test_edf_select_earliest () =
  let q = Readyq.Edf_queue.create () in
  let tcbs = make_tcbs 5 in
  tcbs.(0).eff_deadline <- 50;
  tcbs.(1).eff_deadline <- 10;
  tcbs.(2).eff_deadline <- 30;
  tcbs.(3).eff_deadline <- 5;
  tcbs.(4).eff_deadline <- 40;
  Array.iter (Readyq.Edf_queue.add q) tcbs;
  (match Readyq.Edf_queue.select q with
  | Some t -> check int "earliest deadline wins" 3 t.tid
  | None -> fail "selection expected");
  (* block the earliest: next-earliest is picked *)
  tcbs.(3).state <- Blocked "t";
  Readyq.Edf_queue.note_blocked q tcbs.(3);
  (match Readyq.Edf_queue.select q with
  | Some t -> check int "next earliest" 1 t.tid
  | None -> fail "selection expected");
  Readyq.Edf_queue.check q

let test_edf_ready_count () =
  let q = Readyq.Edf_queue.create () in
  let tcbs = make_tcbs 4 in
  Array.iter (Readyq.Edf_queue.add q) tcbs;
  check int "all ready" 4 (Readyq.Edf_queue.ready_count q);
  tcbs.(2).state <- Blocked "t";
  Readyq.Edf_queue.note_blocked q tcbs.(2);
  check int "one blocked" 3 (Readyq.Edf_queue.ready_count q);
  tcbs.(2).state <- Ready;
  Readyq.Edf_queue.note_unblocked q tcbs.(2);
  check int "unblocked again" 4 (Readyq.Edf_queue.ready_count q);
  Readyq.Edf_queue.remove q tcbs.(0);
  check int "removed member" 3 (Readyq.Edf_queue.ready_count q);
  check int "length" 3 (Readyq.Edf_queue.length q);
  Readyq.Edf_queue.check q

let test_edf_empty () =
  let q = Readyq.Edf_queue.create () in
  check bool "empty select" true (Readyq.Edf_queue.select q = None);
  let t = Mock.tcb ~tid:0 ~state:(Blocked "x") () in
  Readyq.Edf_queue.add q t;
  check bool "no ready member" true (Readyq.Edf_queue.select q = None)

let prop_edf_select_minimal =
  qtest "EDF select returns the min-deadline ready task"
    QCheck2.Gen.(list_size (int_range 1 30) (pair (int_range 1 1000) bool))
    (fun spec ->
      let q = Readyq.Edf_queue.create () in
      let tcbs =
        List.mapi
          (fun i (deadline, ready) ->
            let t =
              Mock.tcb ~tid:i ~deadline
                ~state:(if ready then Ready else Blocked "x")
                ()
            in
            Readyq.Edf_queue.add q t;
            t)
          spec
      in
      Readyq.Edf_queue.check q;
      let expected =
        List.filter is_ready tcbs
        |> List.sort deadline_compare
        |> function [] -> None | t :: _ -> Some t
      in
      match (Readyq.Edf_queue.select q, expected) with
      | None, None -> true
      | Some a, Some b -> a == b
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* RM queue *)

let ready_in_priority_order q =
  Readyq.Rm_queue.check q;
  match Readyq.Rm_queue.select q with
  | None -> true
  | Some _ -> true

let test_rm_highestp_tracking () =
  let q = Readyq.Rm_queue.create () in
  let tcbs = make_tcbs 5 in
  tcbs.(0).state <- Blocked "x";
  tcbs.(2).state <- Blocked "x";
  Array.iter (Readyq.Rm_queue.add q) tcbs;
  (match Readyq.Rm_queue.select q with
  | Some t -> check int "first ready is tau1" 1 t.tid
  | None -> fail "ready task expected");
  (* block tau1: highestp must advance past blocked tau2 to tau3 *)
  tcbs.(1).state <- Blocked "x";
  let scanned = Readyq.Rm_queue.note_blocked q tcbs.(1) in
  check bool "scan advanced" true (scanned >= 1);
  (match Readyq.Rm_queue.select q with
  | Some t -> check int "skips blocked tau2" 3 t.tid
  | None -> fail "ready task expected");
  (* unblock tau0 (highest priority): O(1) update *)
  tcbs.(0).state <- Ready;
  Readyq.Rm_queue.note_unblocked q tcbs.(0);
  (match Readyq.Rm_queue.select q with
  | Some t -> check int "tau0 takes over" 0 t.tid
  | None -> fail "ready task expected");
  check bool "invariants hold" true (ready_in_priority_order q)

let test_rm_all_blocked () =
  let q = Readyq.Rm_queue.create () in
  let tcbs = make_tcbs 3 in
  Array.iter (fun t -> t.state <- Blocked "x") tcbs;
  Array.iter (Readyq.Rm_queue.add q) tcbs;
  check bool "no selection" true (Readyq.Rm_queue.select q = None);
  tcbs.(2).state <- Ready;
  Readyq.Rm_queue.note_unblocked q tcbs.(2);
  (match Readyq.Rm_queue.select q with
  | Some t -> check int "lowest-priority ready" 2 t.tid
  | None -> fail "expected tau2")

(* Random block/unblock storm against a model. *)
let prop_rm_model =
  qtest "RM queue tracks the highest-priority ready task"
    QCheck2.Gen.(
      pair (int_range 2 20) (list_size (int_bound 60) (pair (int_bound 19) bool)))
    (fun (n, ops) ->
      let q = Readyq.Rm_queue.create () in
      let tcbs = make_tcbs n in
      Array.iter (Readyq.Rm_queue.add q) tcbs;
      let ok = ref true in
      let apply (idx, block) =
        let t = tcbs.(idx mod n) in
        match (t.state, block) with
        | Ready, true ->
          t.state <- Blocked "x";
          ignore (Readyq.Rm_queue.note_blocked q t)
        | Blocked _, false ->
          t.state <- Ready;
          Readyq.Rm_queue.note_unblocked q t
        | Ready, false | Blocked _, true -> ()
        | (Running | Dormant), _ -> ()
      in
      let verify () =
        Readyq.Rm_queue.check q;
        let expected =
          Array.to_list tcbs |> List.filter is_ready
          |> List.sort prio_compare
          |> function [] -> None | t :: _ -> Some t
        in
        match (Readyq.Rm_queue.select q, expected) with
        | None, None -> ()
        | Some a, Some b when a == b -> ()
        | _ -> ok := false
      in
      List.iter
        (fun op ->
          apply op;
          verify ())
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Place-holder priority inheritance (§6.2) *)

let test_inherit_swap_positions () =
  let q = Readyq.Rm_queue.create () in
  let tcbs = make_tcbs 4 in
  (* tau0 high prio (will block on the sem), tau3 low prio (holder) *)
  Array.iter (Readyq.Rm_queue.add q) tcbs;
  let holder = tcbs.(3) and waiter = tcbs.(0) in
  (* the waiter blocks (it is about to wait on the semaphore) *)
  waiter.state <- Blocked "sem";
  ignore (Readyq.Rm_queue.note_blocked q waiter);
  holder.eff_prio <- waiter.eff_prio;
  Readyq.Rm_queue.inherit_swap q ~holder ~waiter;
  check bool "placeholder recorded" true
    (match holder.placeholder with Some p -> p == waiter | None -> false);
  (match Readyq.Rm_queue.select q with
  | Some t -> check int "holder now first ready" 3 t.tid
  | None -> fail "expected holder");
  Readyq.Rm_queue.check q;
  (* restore *)
  holder.eff_prio <- holder.base_prio;
  Readyq.Rm_queue.restore_swap q ~holder;
  check bool "placeholder cleared" true (holder.placeholder = None);
  waiter.state <- Ready;
  Readyq.Rm_queue.note_unblocked q waiter;
  (match Readyq.Rm_queue.select q with
  | Some t -> check int "waiter back on top" 0 t.tid
  | None -> fail "expected waiter");
  Readyq.Rm_queue.check q

let test_inherit_second_waiter () =
  (* §6.2's three-thread case: T1 inherits T2, then higher T3 arrives:
     T3 becomes the place-holder and T2 returns home. *)
  let q = Readyq.Rm_queue.create () in
  let tcbs = make_tcbs 5 in
  Array.iter (Readyq.Rm_queue.add q) tcbs;
  let holder = tcbs.(4) and t2 = tcbs.(2) and t3 = tcbs.(0) in
  t2.state <- Blocked "sem";
  ignore (Readyq.Rm_queue.note_blocked q t2);
  holder.eff_prio <- t2.eff_prio;
  Readyq.Rm_queue.inherit_swap q ~holder ~waiter:t2;
  t3.state <- Blocked "sem";
  ignore (Readyq.Rm_queue.note_blocked q t3);
  holder.eff_prio <- t3.eff_prio;
  Readyq.Rm_queue.inherit_swap q ~holder ~waiter:t3;
  check bool "t3 is the placeholder now" true
    (match holder.placeholder with Some p -> p == t3 | None -> false);
  Readyq.Rm_queue.check q;
  (match Readyq.Rm_queue.select q with
  | Some t -> check int "holder leads" 4 t.tid
  | None -> fail "expected holder");
  (* restore: everyone returns to base positions *)
  holder.eff_prio <- holder.base_prio;
  Readyq.Rm_queue.restore_swap q ~holder;
  t3.state <- Ready;
  Readyq.Rm_queue.note_unblocked q t3;
  t2.state <- Ready;
  Readyq.Rm_queue.note_unblocked q t2;
  Readyq.Rm_queue.check q;
  match Readyq.Rm_queue.select q with
  | Some t -> check int "t3 on top after restore" 0 t.tid
  | None -> fail "expected t3"

let test_reposition_standard_pi () =
  let q = Readyq.Rm_queue.create () in
  let tcbs = make_tcbs 6 in
  Array.iter (Readyq.Rm_queue.add q) tcbs;
  let holder = tcbs.(5) in
  holder.eff_prio <- -1; (* boost above everyone *)
  let scanned = Readyq.Rm_queue.reposition q holder in
  check bool "scan cost reported" true (scanned >= 1);
  (match Readyq.Rm_queue.select q with
  | Some t -> check int "boosted holder first" 5 t.tid
  | None -> fail "expected holder");
  holder.eff_prio <- holder.base_prio;
  let scanned_back = Readyq.Rm_queue.reposition q holder in
  check bool "restore scans the queue" true (scanned_back >= 5);
  Readyq.Rm_queue.check q;
  match Readyq.Rm_queue.select q with
  | Some t -> check int "tau0 leads again" 0 t.tid
  | None -> fail "expected tau0"

(* Random storm of block/unblock/inherit/restore operations (legality
   mirroring the kernel's usage): after every step the queue invariants
   hold and selection returns the highest-priority ready task. *)
let prop_pi_storm =
  qtest ~count:200 "place-holder PI under random op storms"
    QCheck2.Gen.(
      pair (int_range 3 12) (list_size (int_bound 40) (pair (int_bound 3) (int_bound 11))))
    (fun (n, ops) ->
      let q = Readyq.Rm_queue.create () in
      let tcbs = make_tcbs n in
      Array.iter (Readyq.Rm_queue.add q) tcbs;
      let is_placeholder t =
        Array.exists
          (fun h -> match h.placeholder with Some p -> p == t | None -> false)
          tcbs
      in
      let ok = ref true in
      let verify () =
        Readyq.Rm_queue.check q;
        let expected =
          Array.to_list tcbs |> List.filter is_ready |> List.sort prio_compare
          |> function [] -> None | t :: _ -> Some t
        in
        match (Readyq.Rm_queue.select q, expected) with
        | None, None -> ()
        | Some a, Some b when a == b -> ()
        | _ -> ok := false
      in
      let apply (op, idx) =
        let t = tcbs.(idx mod n) in
        match op with
        | 0 ->
          (* block a ready task *)
          if is_ready t then begin
            t.state <- Blocked "x";
            ignore (Readyq.Rm_queue.note_blocked q t)
          end
        | 1 ->
          (* unblock — but never a parked place-holder *)
          if (not (is_ready t)) && not (is_placeholder t) then begin
            t.state <- Ready;
            Readyq.Rm_queue.note_unblocked q t
          end
        | 2 ->
          (* inherit: t is the holder; pick the highest blocked
             non-place-holder task that outranks it as the waiter *)
          if not (is_placeholder t) then begin
            let waiter =
              Array.fold_left
                (fun acc w ->
                  if
                    w != t
                    && (not (is_ready w))
                    && (not (is_placeholder w))
                    && w.eff_prio = w.base_prio
                    && w.eff_prio < t.eff_prio
                    && match t.placeholder with
                       | Some p -> p != w
                       | None -> true
                  then
                    match acc with
                    | Some best when prio_compare best w <= 0 -> acc
                    | _ -> Some w
                  else acc)
                None tcbs
            in
            match waiter with
            | Some w ->
              t.eff_prio <- w.eff_prio;
              Readyq.Rm_queue.inherit_swap q ~holder:t ~waiter:w
            | None -> ()
          end
        | _ -> (
          (* restore *)
          match t.placeholder with
          | Some _ ->
            t.eff_prio <- t.base_prio;
            Readyq.Rm_queue.restore_swap q ~holder:t
          | None -> ())
      in
      List.iter
        (fun op ->
          apply op;
          verify ())
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Heap queue *)

let test_heap_basics () =
  let q = Readyq.Heap_queue.create () in
  let tcbs = make_tcbs 6 in
  (* heap holds ready tasks only *)
  Array.iter (fun t -> Readyq.Heap_queue.note_unblocked q t) tcbs;
  check int "length" 6 (Readyq.Heap_queue.length q);
  (match Readyq.Heap_queue.select q with
  | Some t -> check int "min prio value first" 0 t.tid
  | None -> fail "expected tau0");
  Readyq.Heap_queue.note_blocked q tcbs.(0);
  (match Readyq.Heap_queue.select q with
  | Some t -> check int "next" 1 t.tid
  | None -> fail "expected tau1");
  (* re-key after a priority change *)
  tcbs.(5).eff_prio <- -1;
  Readyq.Heap_queue.rekey q tcbs.(5);
  (match Readyq.Heap_queue.select q with
  | Some t -> check int "rekeyed to top" 5 t.tid
  | None -> fail "expected tau5");
  Readyq.Heap_queue.check q

let suite =
  [
    test_case "edf: earliest-deadline selection" `Quick test_edf_select_earliest;
    test_case "edf: ready counting" `Quick test_edf_ready_count;
    test_case "edf: empty cases" `Quick test_edf_empty;
    prop_edf_select_minimal;
    test_case "rm: highestp tracking" `Quick test_rm_highestp_tracking;
    test_case "rm: all blocked" `Quick test_rm_all_blocked;
    prop_rm_model;
    test_case "pi: place-holder swap" `Quick test_inherit_swap_positions;
    test_case "pi: second waiter case" `Quick test_inherit_second_waiter;
    test_case "pi: standard reposition" `Quick test_reposition_standard_pi;
    prop_pi_storm;
    test_case "heap: basics and rekey" `Quick test_heap_basics;
  ]
