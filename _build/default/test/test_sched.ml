(* Scheduler instances (§5.3–§5.6): partition assignment, selection
   order across queues, charged costs, and cross-queue priority
   inheritance. *)

open Alcotest
open Emeralds
open Emeralds.Types

let cost = Sim.Cost.m68040

let make ~spec ~n ~ready =
  let sched = Sched.instantiate spec ~cost ~optimized_pi:true in
  let tcbs =
    Array.init n (fun i ->
        Mock.tcb ~tid:i ~prio:i
          ~state:(if List.mem i ready then Ready else Blocked "init")
          ())
  in
  sched.s_attach tcbs;
  (sched, tcbs)

let select_tid sched =
  match fst (sched.s_select ()) with Some t -> Some t.tid | None -> None

(* ------------------------------------------------------------------ *)

let test_partition_assignment () =
  let sched, tcbs = make ~spec:(Sched.Csd [ 2; 3 ]) ~n:8 ~ready:[] in
  let classes = Array.map (fun t -> sched.s_queue_class t) tcbs in
  check bool "ranks 0-1 in DP1" true (classes.(0) = Dp 0 && classes.(1) = Dp 0);
  check bool "ranks 2-4 in DP2" true
    (classes.(2) = Dp 1 && classes.(3) = Dp 1 && classes.(4) = Dp 1);
  check bool "ranks 5-7 in FP" true
    (classes.(5) = Fp && classes.(6) = Fp && classes.(7) = Fp)

let test_edf_is_single_dp () =
  let sched, tcbs = make ~spec:Sched.Edf ~n:4 ~ready:[] in
  Array.iter (fun t -> check bool "all DP" true (sched.s_queue_class t = Dp 0)) tcbs

let test_rm_is_all_fp () =
  let sched, tcbs = make ~spec:Sched.Rm ~n:4 ~ready:[] in
  Array.iter (fun t -> check bool "all FP" true (sched.s_queue_class t = Fp)) tcbs

let test_selection_priority_order () =
  (* DP1 beats DP2 beats FP, regardless of deadlines. *)
  let sched, tcbs = make ~spec:(Sched.Csd [ 2; 2 ]) ~n:6 ~ready:[ 1; 3; 5 ] in
  tcbs.(1).eff_deadline <- 1_000_000;
  tcbs.(3).eff_deadline <- 5;
  tcbs.(5).eff_deadline <- 1;
  check (option int) "DP1 wins" (Some 1) (select_tid sched);
  tcbs.(1).state <- Blocked "x";
  ignore (sched.s_block tcbs.(1));
  check (option int) "then DP2" (Some 3) (select_tid sched);
  tcbs.(3).state <- Blocked "x";
  ignore (sched.s_block tcbs.(3));
  check (option int) "then FP" (Some 5) (select_tid sched);
  tcbs.(5).state <- Blocked "x";
  ignore (sched.s_block tcbs.(5));
  check (option int) "idle" None (select_tid sched)

let test_edf_within_queue () =
  let sched, tcbs = make ~spec:(Sched.Csd [ 3 ]) ~n:4 ~ready:[ 0; 1; 2 ] in
  tcbs.(0).eff_deadline <- 30;
  tcbs.(1).eff_deadline <- 10;
  tcbs.(2).eff_deadline <- 20;
  check (option int) "earliest deadline in DP" (Some 1) (select_tid sched)

let test_select_costs () =
  (* CSD select charges the queue-list parse plus the scanned queue. *)
  let sched, tcbs = make ~spec:(Sched.Csd [ 2; 3 ]) ~n:8 ~ready:[ 0 ] in
  let _, c = sched.s_select () in
  (* x = 3 queues -> 1.65us parse + DP1 scan (len 2) = 1.2 + 0.5 *)
  check int "DP1 selection cost"
    (Model.Time.of_us_f (1.65 +. 1.2 +. 0.5))
    c;
  tcbs.(0).state <- Blocked "x";
  ignore (sched.s_block tcbs.(0));
  tcbs.(6).state <- Ready;
  ignore (sched.s_unblock tcbs.(6));
  let _, c_fp = sched.s_select () in
  check int "FP selection cost" (Model.Time.of_us_f (1.65 +. 0.6)) c_fp

let test_block_unblock_costs () =
  let sched, tcbs = make ~spec:Sched.Edf ~n:10 ~ready:[ 0; 1 ] in
  tcbs.(0).state <- Blocked "x";
  check int "edf t_b" (Model.Time.of_us_f 1.6) (sched.s_block tcbs.(0));
  tcbs.(0).state <- Ready;
  check int "edf t_u" (Model.Time.of_us_f 1.2) (sched.s_unblock tcbs.(0))

let test_cross_queue_inheritance () =
  (* FP holder inherits a DP waiter's priority: it migrates into the
     DP queue and is selected ahead of other FP work; restore sends it
     home. *)
  let sched, tcbs = make ~spec:(Sched.Csd [ 2 ]) ~n:5 ~ready:[ 3 ] in
  let holder = tcbs.(3) and waiter = tcbs.(0) in
  check bool "holder starts FP" true (sched.s_queue_class holder = Fp);
  ignore (sched.s_inherit ~holder ~waiter);
  check bool "holder boosted into DP" true (sched.s_queue_class holder = Dp 0);
  check (option int) "boosted holder selected" (Some 3) (select_tid sched);
  ignore (sched.s_restore ~holder);
  check bool "holder back in FP" true (sched.s_queue_class holder = Fp);
  check int "effective priority restored" holder.base_prio holder.eff_prio;
  check (option int) "still the only ready task" (Some 3) (select_tid sched)

let test_dp_to_dp_inheritance () =
  let sched, tcbs = make ~spec:(Sched.Csd [ 1; 2 ]) ~n:4 ~ready:[ 2 ] in
  let holder = tcbs.(2) and waiter = tcbs.(0) in
  check bool "holder in DP2" true (sched.s_queue_class holder = Dp 1);
  ignore (sched.s_inherit ~holder ~waiter);
  check bool "holder hoisted to DP1" true (sched.s_queue_class holder = Dp 0);
  check bool "deadline inherited" true
    (holder.eff_deadline <= waiter.eff_deadline);
  ignore (sched.s_restore ~holder);
  check bool "home again" true (sched.s_queue_class holder = Dp 1)

let test_heap_sched () =
  let sched, tcbs = make ~spec:Sched.Rm_heap ~n:4 ~ready:[] in
  (* heap scheduler queues ready tasks on unblock *)
  tcbs.(2).state <- Ready;
  ignore (sched.s_unblock tcbs.(2));
  tcbs.(1).state <- Ready;
  ignore (sched.s_unblock tcbs.(1));
  check (option int) "highest ready" (Some 1) (select_tid sched);
  tcbs.(1).state <- Blocked "x";
  let c = sched.s_block tcbs.(1) in
  check bool "heap block cost is log-shaped" true
    (c >= Sim.Cost.heap_tb cost ~n:1);
  check (option int) "next" (Some 2) (select_tid sched)

let test_validate_partition () =
  Sched.validate_partition (Sched.Csd [ 2; 2 ]) ~n_tasks:5;
  check bool "oversized partition rejected" true
    (try
       Sched.validate_partition (Sched.Csd [ 4; 4 ]) ~n_tasks:5;
       false
     with Invalid_argument _ -> true);
  check bool "non-positive size rejected" true
    (try
       Sched.validate_partition (Sched.Csd [ 0 ]) ~n_tasks:5;
       false
     with Invalid_argument _ -> true)

let test_spec_names () =
  check string "edf" "EDF" (Sched.spec_name Sched.Edf);
  check string "rm" "RM" (Sched.spec_name Sched.Rm);
  check string "heap" "RM-heap" (Sched.spec_name Sched.Rm_heap);
  check string "csd3" "CSD-3" (Sched.spec_name (Sched.Csd [ 1; 2 ]));
  check int "queue count csd4" 4 (Sched.queue_count (Sched.Csd [ 1; 1; 1 ]));
  check int "queue count rm" 1 (Sched.queue_count Sched.Rm)

let suite =
  [
    test_case "partition: rank assignment" `Quick test_partition_assignment;
    test_case "partition: EDF = one DP queue" `Quick test_edf_is_single_dp;
    test_case "partition: RM = FP only" `Quick test_rm_is_all_fp;
    test_case "selection: queue priority order" `Quick test_selection_priority_order;
    test_case "selection: EDF within a queue" `Quick test_edf_within_queue;
    test_case "costs: selection" `Quick test_select_costs;
    test_case "costs: block/unblock" `Quick test_block_unblock_costs;
    test_case "pi: FP -> DP migration" `Quick test_cross_queue_inheritance;
    test_case "pi: DP -> DP hoist" `Quick test_dp_to_dp_inheritance;
    test_case "heap scheduler" `Quick test_heap_sched;
    test_case "partition validation" `Quick test_validate_partition;
    test_case "spec names" `Quick test_spec_names;
  ]
