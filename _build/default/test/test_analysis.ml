(* Off-line schedulability: RTA, the demand criterion, the CSD test,
   the overhead model, partition search, and breakdown utilization. *)

open Alcotest

let qtest ?(count = 80) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let ms = Model.Time.ms
let cost = Sim.Cost.m68040

let task id p c = Model.Task.make ~id ~period:(ms p) ~wcet:(ms c) ()

(* ------------------------------------------------------------------ *)
(* RTA *)

let test_rta_known_example () =
  (* classic example: R3 = 1 + interference *)
  let rows = [| (3, 3, 1); (5, 5, 2); (10, 10, 1) |] in
  check (option int) "R1 = C1" (Some 1) (Analysis.Rta.response_time ~tasks:rows 0);
  check (option int) "R2" (Some 3) (Analysis.Rta.response_time ~tasks:rows 1);
  (* R3: fixpoint of 1 + ceil(R/3)*1 + ceil(R/5)*2 = 5 *)
  check (option int) "R3" (Some 5) (Analysis.Rta.response_time ~tasks:rows 2);
  check bool "feasible" true (Analysis.Rta.feasible rows)

let test_rta_infeasible () =
  let rows = [| (4, 4, 2); (6, 6, 3) |] in
  (* R2 = 3 + ceil(R/4)*2: 5 -> 3+4=7 > 6 *)
  check (option int) "R2 overruns" None (Analysis.Rta.response_time ~tasks:rows 1);
  check bool "set infeasible" false (Analysis.Rta.feasible rows);
  check bool "prefix without the overrunning task is fine" true
    (Analysis.Rta.feasible_prefix rows ~upto:1)

let test_rta_table2 () =
  let rows =
    Array.map
      (fun (t : Model.Task.t) -> (t.period, t.deadline, t.wcet))
      (Model.Taskset.tasks Workload.Presets.table2)
  in
  check bool "tau5 fails under RM" false (Analysis.Rta.feasible rows);
  (* tau5 is at rank 4; everything above it is fine *)
  check bool "tau1..tau4 fine" true (Analysis.Rta.feasible_prefix rows ~upto:4);
  check bool "tau5 is the troublesome task" false
    (Analysis.Rta.feasible_prefix rows ~upto:5)

(* ------------------------------------------------------------------ *)
(* Demand criterion *)

let test_dbf () =
  check int "before deadline" 0
    (Analysis.Demand.dbf ~period:10 ~deadline:10 ~wcet:3 9);
  check int "at deadline" 3
    (Analysis.Demand.dbf ~period:10 ~deadline:10 ~wcet:3 10);
  check int "two jobs" 6
    (Analysis.Demand.dbf ~period:10 ~deadline:10 ~wcet:3 20);
  check int "constrained deadline" 3
    (Analysis.Demand.dbf ~period:10 ~deadline:4 ~wcet:3 4)

let test_demand_feasible () =
  check bool "U<1 implicit deadlines" true
    (Analysis.Demand.feasible
       ~own:[| (10, 10, 4); (15, 15, 5) |]
       ~interference:[||] ());
  check bool "U>1 infeasible" false
    (Analysis.Demand.feasible
       ~own:[| (10, 10, 6); (15, 15, 9) |]
       ~interference:[||] ());
  (* constrained deadlines can fail below U = 1 *)
  check bool "tight deadline fails" false
    (Analysis.Demand.feasible ~own:[| (10, 2, 3) |] ~interference:[||] ());
  (* interference consumes the slack *)
  check bool "with interference" true
    (Analysis.Demand.feasible ~own:[| (10, 10, 2) |] ~interference:[| (5, 2) |] ());
  check bool "interference overload" false
    (Analysis.Demand.feasible ~own:[| (10, 10, 4) |] ~interference:[| (5, 4) |] ())

(* ------------------------------------------------------------------ *)
(* Overhead model *)

let test_overhead_layout () =
  check (pair (list int) int) "clipped layout"
    ([ 2; 3 ], 5)
    (Analysis.Overhead.layout [ 2; 3 ] 10);
  check (pair (list int) int) "oversized partition clipped"
    ([ 4; 2 ], 0)
    (Analysis.Overhead.layout [ 4; 9 ] 6)

let test_overhead_magnitudes () =
  (* EDF per-period overhead at n=15:
     1.5 * (1.6 + 1.2 + 2*(1.2 + 0.25*15)) us = 1.5 * 12.7 = 19.05 *)
  let edf = Analysis.Overhead.per_task ~cost ~spec:Emeralds.Sched.Edf ~n:15 ~rank:0 in
  check int "edf n=15" (Model.Time.of_us_f 19.05) edf;
  (* RM at n=15: 1.5 * (1.0+0.36*15 + 1.4 + 2*0.6) us = 1.5 * 9.0 *)
  let rm = Analysis.Overhead.per_task ~cost ~spec:Emeralds.Sched.Rm ~n:15 ~rank:0 in
  check int "rm n=15" (Model.Time.of_us_f 13.5) rm;
  check bool "EDF overhead grows with n" true
    (Analysis.Overhead.per_task ~cost ~spec:Emeralds.Sched.Edf ~n:40 ~rank:0 > edf)

let test_overhead_csd_classes () =
  let spec = Emeralds.Sched.Csd [ 3; 5 ] in
  let dp1 = Analysis.Overhead.per_task ~cost ~spec ~n:20 ~rank:0 in
  let dp2 = Analysis.Overhead.per_task ~cost ~spec ~n:20 ~rank:4 in
  let fp = Analysis.Overhead.per_task ~cost ~spec ~n:20 ~rank:12 in
  (* Table 3: DP1 total O(r) < DP2 total O(2r - q) *)
  check bool "DP1 cheaper than DP2" true (dp1 < dp2);
  check bool "all positive" true (dp1 > 0 && dp2 > 0 && fp > 0);
  (* every class beats plain EDF at this size *)
  let edf = Analysis.Overhead.per_task ~cost ~spec:Emeralds.Sched.Edf ~n:20 ~rank:0 in
  check bool "DP1 cheaper than pure EDF" true (dp1 < edf)

(* ------------------------------------------------------------------ *)
(* Feasibility dispatch *)

let test_feasibility_table2 () =
  (* zero-cost: policy-only feasibility *)
  let z = Sim.Cost.zero in
  let ts = Workload.Presets.table2 in
  check bool "RM infeasible" false
    (Analysis.Feasibility.feasible ~cost:z ~spec:Emeralds.Sched.Rm ts);
  check bool "EDF feasible" true
    (Analysis.Feasibility.feasible ~cost:z ~spec:Emeralds.Sched.Edf ts);
  check bool "CSD-2 with tau1..5 dynamic feasible" true
    (Analysis.Feasibility.feasible ~cost:z ~spec:(Emeralds.Sched.Csd [ 5 ]) ts);
  (* a CSD-2 split below the troublesome task is still infeasible *)
  check bool "CSD-2 with tau1..4 dynamic infeasible" false
    (Analysis.Feasibility.feasible ~cost:z ~spec:(Emeralds.Sched.Csd [ 4 ]) ts)

let test_partition_candidates () =
  let c2 = Analysis.Partition.candidates ~mode:Exhaustive ~queues:2 ~n:10 in
  check int "CSD-2 exhaustive count" 10 (List.length c2);
  let c3 = Analysis.Partition.candidates ~mode:Exhaustive ~queues:3 ~n:10 in
  check int "CSD-3 exhaustive count = C(10,2)" 45 (List.length c3);
  List.iter
    (fun sizes -> check bool "sizes positive" true (List.for_all (fun s -> s > 0) sizes))
    c3;
  let grid = Analysis.Partition.candidates ~mode:Grid ~queues:3 ~n:50 in
  check bool "grid is small" true (List.length grid < 60);
  check bool "grid includes the all-DP split" true
    (List.exists (fun sizes -> List.fold_left ( + ) 0 sizes = 50) grid)

let test_exhaustive_best_table2 () =
  match Analysis.Partition.exhaustive_best ~cost:Sim.Cost.zero ~queues:2
          Workload.Presets.table2 with
  | Some [ r ] ->
    check int "search finds the troublesome boundary" 5 r
  | Some _ | None -> fail "expected a CSD-2 partition"

(* ------------------------------------------------------------------ *)
(* Breakdown utilization *)

let test_breakdown_edf_zero_cost () =
  let ts = Model.Taskset.of_list [ task 1 10 2; task 2 20 4; task 3 40 8 ] in
  let b = Analysis.Breakdown.of_spec ~cost:Sim.Cost.zero ~spec:Emeralds.Sched.Edf ts in
  check bool "EDF ideal breakdown ~ 1.0" true (b > 0.99 && b <= 1.01)

let test_breakdown_overheads_reduce () =
  let ts =
    Workload.Generator.random_taskset ~rng:(Util.Rng.create ~seed:3) ~n:30 ()
  in
  let ideal = Analysis.Breakdown.of_spec ~cost:Sim.Cost.zero ~spec:Emeralds.Sched.Edf ts in
  let real = Analysis.Breakdown.of_spec ~cost ~spec:Emeralds.Sched.Edf ts in
  check bool "overheads lower the breakdown" true (real < ideal)

let test_breakdown_csd_dominates () =
  let sets = Workload.Generator.batch ~seed:21 ~n:30 ~count:6 () in
  List.iter
    (fun ts ->
      let edf = Analysis.Breakdown.of_spec ~cost ~spec:Emeralds.Sched.Edf ts in
      let rm = Analysis.Breakdown.of_spec ~cost ~spec:Emeralds.Sched.Rm ts in
      let csd3 = Analysis.Breakdown.of_csd ~cost ~queues:3 ts in
      check bool "CSD-3 >= EDF (tolerance)" true (csd3 >= edf -. 0.02);
      check bool "CSD-3 >= RM (tolerance)" true (csd3 >= rm -. 0.02))
    sets

let prop_feasibility_monotone_in_scale =
  qtest "feasibility is monotone in the scale factor"
    QCheck2.Gen.(pair (int_range 1 1000) (float_range 0.1 0.9))
    (fun (seed, s) ->
      let ts =
        Workload.Generator.random_taskset ~rng:(Util.Rng.create ~seed) ~n:12 ()
      in
      let feasible x =
        match Model.Taskset.scale_wcets ts x with
        | None -> false
        | Some scaled ->
          Analysis.Feasibility.feasible ~cost ~spec:Emeralds.Sched.Edf scaled
      in
      (* if feasible at 1.0x it must be feasible at s < 1 too *)
      (not (feasible 1.0)) || feasible s)

let prop_breakdown_bounded =
  qtest "breakdown utilization lies in (0, 1]"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let ts =
        Workload.Generator.random_taskset ~rng:(Util.Rng.create ~seed) ~n:10 ()
      in
      let b = Analysis.Breakdown.of_spec ~cost ~spec:Emeralds.Sched.Rm ts in
      b > 0.0 && b <= 1.02)

let test_demand_resource_cap () =
  (* a feasible set needing three check points: an artificially small
     point budget must yield the conservative (infeasible) verdict,
     never a hang or a false positive *)
  let own = [| (10, 10, 5); (14, 14, 6) |] in
  check bool "feasible with enough points" true
    (Analysis.Demand.feasible ~own ~interference:[||] ());
  check bool "conservative when capped" false
    (Analysis.Demand.feasible ~max_points:2 ~own ~interference:[||] ())

let test_rta_iteration_limit () =
  let rows = [| (ms 10, ms 10, ms 5); (ms 10, ms 10, ms 5) |] in
  (* converges normally *)
  check bool "fits exactly" true (Analysis.Rta.feasible rows);
  (* an absurdly small limit cannot loop forever *)
  check bool "limit respected" true
    (match Analysis.Rta.response_time ~limit:1 ~tasks:rows 1 with
    | Some _ | None -> true)

let prop_partition_candidates_valid =
  qtest "partition candidates are well-formed"
    QCheck2.Gen.(pair (int_range 2 4) (int_range 2 60))
    (fun (queues, n) ->
      let check_list mode =
        List.for_all
          (fun sizes ->
            sizes <> []
            && List.for_all (fun s -> s > 0) sizes
            && List.fold_left ( + ) 0 sizes <= n
            && List.length sizes = queues - 1)
          (Analysis.Partition.candidates ~mode ~queues ~n)
      in
      check_list Grid
      && (queues > 3 || n > 25 || check_list Exhaustive))

let test_breakdown_rejects_empty_utilization () =
  check bool "u0 <= 0 rejected" true
    (try
       ignore (Analysis.Breakdown.search ~feasible:(fun _ -> true) ~u0:0.0 ());
       false
     with Invalid_argument _ -> true)

(* PDC is exact for independent preemptive EDF, and the zero-cost
   kernel is an ideal EDF machine, so the two must agree both ways on
   constrained-deadline workloads. *)
let gen_constrained_taskset =
  QCheck2.Gen.(
    let* n = int_range 1 5 in
    let* specs =
      list_repeat n
        (triple
           (oneofl [ 4; 5; 8; 10; 20; 40 ])
           (int_range 20 400)
           (int_range 40 100))
    in
    let tasks =
      List.mapi
        (fun i (p, permille, dl_pct) ->
          let period = ms p in
          let deadline = max 1 (period * dl_pct / 100) in
          let wcet =
            Util.Intmath.clamp ~lo:1 ~hi:deadline (period * permille / 1000)
          in
          Model.Task.make ~id:(i + 1) ~period ~deadline ~wcet ())
        specs
    in
    return (Model.Taskset.of_list tasks))

let prop_demand_agrees_with_sim =
  qtest "PDC agrees with ideal EDF simulation" gen_constrained_taskset
    (fun ts ->
      let rows =
        Array.map
          (fun (t : Model.Task.t) -> (t.period, t.deadline, t.wcet))
          (Model.Taskset.tasks ts)
      in
      let feasible = Analysis.Demand.feasible ~own:rows ~interference:[||] () in
      let k =
        Emeralds.Kernel.create ~cost:Sim.Cost.zero ~spec:Emeralds.Sched.Edf
          ~taskset:ts ()
      in
      Emeralds.Kernel.run k ~until:(ms 80);
      let missed = Emeralds.Kernel.total_misses k > 0 in
      feasible = not missed)

let suite =
  [
    test_case "rta: textbook example" `Quick test_rta_known_example;
    test_case "rta: infeasible detection" `Quick test_rta_infeasible;
    test_case "rta: Table 2" `Quick test_rta_table2;
    test_case "demand: dbf" `Quick test_dbf;
    test_case "demand: feasibility" `Quick test_demand_feasible;
    test_case "overhead: layout" `Quick test_overhead_layout;
    test_case "overhead: magnitudes" `Quick test_overhead_magnitudes;
    test_case "overhead: CSD classes" `Quick test_overhead_csd_classes;
    test_case "feasibility: Table 2" `Quick test_feasibility_table2;
    test_case "partition: candidates" `Quick test_partition_candidates;
    test_case "partition: exhaustive on Table 2" `Quick test_exhaustive_best_table2;
    test_case "breakdown: EDF ideal" `Quick test_breakdown_edf_zero_cost;
    test_case "breakdown: overheads matter" `Quick test_breakdown_overheads_reduce;
    test_case "breakdown: CSD dominates" `Quick test_breakdown_csd_dominates;
    prop_feasibility_monotone_in_scale;
    prop_breakdown_bounded;
    test_case "demand: resource cap" `Quick test_demand_resource_cap;
    test_case "rta: iteration limit" `Quick test_rta_iteration_limit;
    prop_partition_candidates_valid;
    test_case "breakdown: input validation" `Quick
      test_breakdown_rejects_empty_utilization;
    prop_demand_agrees_with_sim;
  ]
