test/test_experiments.ml: Alcotest Emeralds Experiments List Printf String
