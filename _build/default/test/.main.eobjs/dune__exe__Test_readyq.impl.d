test/test_readyq.ml: Alcotest Array Emeralds List Mock QCheck2 QCheck_alcotest Readyq
