test/test_sim.ml: Alcotest List Model Printf Sim String
