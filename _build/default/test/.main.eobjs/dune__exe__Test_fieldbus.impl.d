test/test_fieldbus.ml: Alcotest Fieldbus List Model Sim
