test/test_ipc.ml: Alcotest Array Emeralds Kernel List Model Objects Printf Program Sched Sim State_msg Types
