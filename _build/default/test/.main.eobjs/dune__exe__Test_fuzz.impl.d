test/test_fuzz.ml: Array Emeralds Hashtbl Kernel List Model Objects Program QCheck2 QCheck_alcotest Random Sched Sim State_msg Types Util
