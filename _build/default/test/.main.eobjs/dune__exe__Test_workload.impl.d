test/test_workload.ml: Alcotest Array List Model QCheck2 QCheck_alcotest Util Workload
