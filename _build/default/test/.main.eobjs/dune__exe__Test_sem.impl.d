test/test_sem.ml: Alcotest Array Emeralds Kernel List Model Objects Option Printf Program QCheck2 QCheck_alcotest Random Sched Sim Types Util
