test/test_footprint.ml: Alcotest Emeralds List String
