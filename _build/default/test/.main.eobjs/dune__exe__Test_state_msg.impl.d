test/test_state_msg.ml: Alcotest Array Emeralds List Model Printf QCheck2 QCheck_alcotest
