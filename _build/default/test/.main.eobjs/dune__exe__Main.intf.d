test/main.mli:
