test/test_kernel.ml: Alcotest Analysis Array Emeralds Kernel List Model Objects Program QCheck2 QCheck_alcotest Sched Sim Workload
