test/test_sched.ml: Alcotest Array Emeralds List Mock Model Sched Sim
