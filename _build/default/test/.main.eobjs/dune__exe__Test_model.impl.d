test/test_model.ml: Alcotest Array Format Model QCheck2 QCheck_alcotest
