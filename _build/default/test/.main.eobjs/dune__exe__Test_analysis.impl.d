test/test_analysis.ml: Alcotest Analysis Array Emeralds List Model QCheck2 QCheck_alcotest Sim Util Workload
