test/test_extensions.ml: Alcotest Analysis Array Condvar Driver Emeralds Experiments Fieldbus Kernel List Model Objects Printf Program Result Sched Sim State_msg String Types Workload
