examples/avionics_distributed.mli:
