examples/avionics_distributed.ml: Array Driver Emeralds Fieldbus Kernel Model Printf Program Sched Sim State_msg Types
