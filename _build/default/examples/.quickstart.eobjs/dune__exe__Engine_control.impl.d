examples/engine_control.ml: Analysis Array Emeralds Kernel List Model Objects Printf Program Sched Sim State_msg Types Workload
