examples/sensor_fusion.ml: Array Emeralds Kernel Model Printf Program Sched Sim State_msg
