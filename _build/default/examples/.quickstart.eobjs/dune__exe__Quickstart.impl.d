examples/quickstart.ml: Analysis Emeralds List Model Printf Sim
