examples/uart_driver.ml: Array Driver Emeralds Kernel List Model Printf Program Sched Sim State_msg Types
