examples/uart_driver.mli:
