examples/quickstart.mli:
