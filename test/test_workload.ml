(* Workload generation (§5.7 methodology) and presets. *)

open Alcotest

let qtest ?(count = 100) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let ms = Model.Time.ms

let test_period_buckets () =
  (* Periods are 5-9, 10-99 or 100-999 ms, roughly a third each. *)
  let rng = Util.Rng.create ~seed:4 in
  let counts = [| 0; 0; 0 |] in
  for _ = 1 to 50 do
    let ts = Workload.Generator.random_taskset ~rng ~n:30 () in
    Array.iter
      (fun (t : Model.Task.t) ->
        let p = t.period in
        if p >= ms 5 && p <= ms 9 then counts.(0) <- counts.(0) + 1
        else if p >= ms 10 && p <= ms 99 then counts.(1) <- counts.(1) + 1
        else if p >= ms 100 && p <= ms 999 then counts.(2) <- counts.(2) + 1
        else failf "period out of range: %dms" (p / 1_000_000))
      (Model.Taskset.tasks ts)
  done;
  let total = counts.(0) + counts.(1) + counts.(2) in
  check int "all periods classified" 1500 total;
  Array.iter
    (fun c ->
      check bool "each bucket near a third" true
        (float_of_int c /. float_of_int total > 0.25
        && float_of_int c /. float_of_int total < 0.42))
    counts

let test_target_utilization () =
  let rng = Util.Rng.create ~seed:5 in
  let ts = Workload.Generator.random_taskset ~rng ~n:20 ~target_u:0.6 () in
  check bool "utilization near target" true
    (abs_float (Model.Taskset.utilization ts -. 0.6) < 0.02)

let test_blocking_call_mix () =
  let rng = Util.Rng.create ~seed:6 in
  let ts = Workload.Generator.random_taskset ~rng ~n:20 () in
  let with_calls =
    Array.fold_left
      (fun acc (t : Model.Task.t) -> acc + min 1 t.blocking_calls)
      0 (Model.Taskset.tasks ts)
  in
  check int "half the tasks make a blocking call" 10 with_calls

let test_batch_reproducibility () =
  let a = Workload.Generator.batch ~seed:42 ~n:10 ~count:5 () in
  let b = Workload.Generator.batch ~seed:42 ~n:10 ~count:5 () in
  List.iter2
    (fun x y ->
      let tx = Model.Taskset.tasks x and ty = Model.Taskset.tasks y in
      Array.iteri
        (fun i (t : Model.Task.t) ->
          check int "same periods" t.period ty.(i).period;
          check int "same wcets" t.wcet ty.(i).wcet)
        tx)
    a b;
  (* prefix stability: workload i doesn't depend on count *)
  let big = Workload.Generator.batch ~seed:42 ~n:10 ~count:8 () in
  let first_small = Model.Taskset.tasks (List.hd a) in
  let first_big = Model.Taskset.tasks (List.hd big) in
  Array.iteri
    (fun i (t : Model.Task.t) ->
      check int "prefix stable" t.period first_big.(i).period)
    first_small

let prop_generated_sets_valid =
  qtest "generated sets are well-formed"
    QCheck2.Gen.(pair (int_range 1 500) (int_range 1 40))
    (fun (seed, n) ->
      let ts =
        Workload.Generator.random_taskset ~rng:(Util.Rng.create ~seed) ~n ()
      in
      Model.Taskset.size ts = n
      && Model.Taskset.utilization ts > 0.0
      && Array.for_all
           (fun (t : Model.Task.t) -> t.wcet >= 1 && t.wcet <= t.deadline)
           (Model.Taskset.tasks ts))

(* Scenario specs come from split streams: spec [i] is a function of
   [seed] and [i] alone, so growing the campaign's [--count] never
   changes an already-generated scenario — falsification indices stay
   replayable forever. *)
let test_scenario_stream_split_invariance () =
  let long = Workload.Generator.scenario_specs ~seed:13 ~count:50 () in
  let short = Workload.Generator.scenario_specs ~seed:13 ~count:10 () in
  List.iteri
    (fun i s ->
      check bool
        (Printf.sprintf "spec %d independent of count" i)
        true
        (s = List.nth long i))
    short

(* Every generated scenario spec is structurally well-formed: object
   indices within the declared tables, nested locks above their outer
   lock (the acyclic acquisition order), admissible utilization, and a
   realizable program for every task. *)
let prop_scenario_specs_well_formed =
  qtest ~count:40 "scenario specs are well-formed"
    QCheck2.Gen.(int_range 1 2_000)
    (fun seed ->
      let specs = Workload.Generator.scenario_specs ~seed ~count:4 () in
      List.for_all
        (fun (s : Workload.Generator.spec) ->
          let seg_ok (seg : Workload.Generator.seg) =
            match seg with
            | S_compute d -> d >= 0
            | S_critical { lock; body; nested } -> (
              lock >= 0 && lock < s.s_locks && body >= 0
              && match nested with
                 | None -> true
                 | Some (l2, b2) -> l2 > lock && l2 < s.s_locks && b2 >= 0)
            | S_cond_wait { lock; wq; before; after } ->
              lock >= 0 && lock < s.s_locks && wq >= 0 && wq < s.s_waitqs
              && before >= 0 && after >= 0
            | S_wait w | S_signal w -> w >= 0 && w < s.s_waitqs
            | S_timed_wait (w, d) -> w >= 0 && w < s.s_waitqs && d > 0
            | S_send m | S_recv m ->
              m >= 0 && m < List.length s.s_mailboxes
            | S_state_write m | S_state_read m ->
              m >= 0 && m < List.length s.s_state_msgs
            | S_delay d -> d > 0
            | S_alloc p | S_free p -> p >= 0 && p < List.length s.s_pools
          in
          (* alloc/free balance: every job returns what it took, and
             each pool's capacity covers the sum of its users' peaks *)
          let pools_balanced =
            List.for_all
              (fun (t : Workload.Generator.task_spec) ->
                List.for_all
                  (fun p ->
                    let count tag =
                      List.length
                        (List.filter (fun s -> s = tag) t.g_segs)
                    in
                    count (Workload.Generator.S_alloc p)
                    = count (Workload.Generator.S_free p))
                  (List.init (List.length s.s_pools) Fun.id))
              s.s_tasks
            && List.for_all Fun.id
                 (List.mapi
                    (fun p (cap, bytes) ->
                      let demand =
                        List.fold_left
                          (fun acc (t : Workload.Generator.task_spec) ->
                            acc
                            + List.length
                                (List.filter
                                   (fun s -> s = Workload.Generator.S_alloc p)
                                   t.g_segs))
                          0 s.s_tasks
                      in
                      cap >= demand && bytes > 0)
                    s.s_pools)
          in
          let ids =
            List.map (fun (t : Workload.Generator.task_spec) -> t.g_id) s.s_tasks
          in
          pools_balanced
          && List.length (List.sort_uniq compare ids) = List.length ids
          && List.for_all
               (fun (t : Workload.Generator.task_spec) ->
                 t.g_period > 0 && List.for_all seg_ok t.g_segs)
               s.s_tasks
          && Workload.Generator.spec_utilization s <= 1.0
          &&
          (* realization allocates objects and declares WCETs *)
          let sc = Workload.Generator.realize s in
          Model.Taskset.size sc.taskset = List.length s.s_tasks)
        specs)

let test_presets_sane () =
  List.iter
    (fun (name, ts, max_u) ->
      let u = Model.Taskset.utilization ts in
      check bool (name ^ " utilization sane") true (u > 0.2 && u < max_u))
    [
      ("table2", Workload.Presets.table2, 0.9);
      ("engine", Workload.Presets.engine_control, 1.0);
      ("avionics", Workload.Presets.avionics, 1.0);
      ("voice", Workload.Presets.voice, 1.0);
    ];
  check (float 0.001) "table2 is the paper's 0.884" 0.884
    (Model.Taskset.utilization Workload.Presets.table2);
  check int "troublesome rank names tau5" 5
    (Model.Taskset.get Workload.Presets.table2
       Workload.Presets.table2_troublesome_rank)
      .id

let suite =
  [
    test_case "period buckets" `Quick test_period_buckets;
    test_case "target utilization" `Quick test_target_utilization;
    test_case "blocking-call mix" `Quick test_blocking_call_mix;
    test_case "batch reproducibility" `Quick test_batch_reproducibility;
    prop_generated_sets_valid;
    test_case "scenario stream split invariance" `Quick
      test_scenario_stream_split_invariance;
    prop_scenario_specs_well_formed;
    test_case "presets" `Quick test_presets_sane;
  ]
