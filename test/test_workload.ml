(* Workload generation (§5.7 methodology) and presets. *)

open Alcotest

let qtest ?(count = 100) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let ms = Model.Time.ms

let test_period_buckets () =
  (* Periods are 5-9, 10-99 or 100-999 ms, roughly a third each. *)
  let rng = Util.Rng.create ~seed:4 in
  let counts = [| 0; 0; 0 |] in
  for _ = 1 to 50 do
    let ts = Workload.Generator.random_taskset ~rng ~n:30 () in
    Array.iter
      (fun (t : Model.Task.t) ->
        let p = t.period in
        if p >= ms 5 && p <= ms 9 then counts.(0) <- counts.(0) + 1
        else if p >= ms 10 && p <= ms 99 then counts.(1) <- counts.(1) + 1
        else if p >= ms 100 && p <= ms 999 then counts.(2) <- counts.(2) + 1
        else failf "period out of range: %dms" (p / 1_000_000))
      (Model.Taskset.tasks ts)
  done;
  let total = counts.(0) + counts.(1) + counts.(2) in
  check int "all periods classified" 1500 total;
  Array.iter
    (fun c ->
      check bool "each bucket near a third" true
        (float_of_int c /. float_of_int total > 0.25
        && float_of_int c /. float_of_int total < 0.42))
    counts

let test_target_utilization () =
  let rng = Util.Rng.create ~seed:5 in
  let ts = Workload.Generator.random_taskset ~rng ~n:20 ~target_u:0.6 () in
  check bool "utilization near target" true
    (abs_float (Model.Taskset.utilization ts -. 0.6) < 0.02)

let test_blocking_call_mix () =
  let rng = Util.Rng.create ~seed:6 in
  let ts = Workload.Generator.random_taskset ~rng ~n:20 () in
  let with_calls =
    Array.fold_left
      (fun acc (t : Model.Task.t) -> acc + min 1 t.blocking_calls)
      0 (Model.Taskset.tasks ts)
  in
  check int "half the tasks make a blocking call" 10 with_calls

let test_batch_reproducibility () =
  let a = Workload.Generator.batch ~seed:42 ~n:10 ~count:5 () in
  let b = Workload.Generator.batch ~seed:42 ~n:10 ~count:5 () in
  List.iter2
    (fun x y ->
      let tx = Model.Taskset.tasks x and ty = Model.Taskset.tasks y in
      Array.iteri
        (fun i (t : Model.Task.t) ->
          check int "same periods" t.period ty.(i).period;
          check int "same wcets" t.wcet ty.(i).wcet)
        tx)
    a b;
  (* prefix stability: workload i doesn't depend on count *)
  let big = Workload.Generator.batch ~seed:42 ~n:10 ~count:8 () in
  let first_small = Model.Taskset.tasks (List.hd a) in
  let first_big = Model.Taskset.tasks (List.hd big) in
  Array.iteri
    (fun i (t : Model.Task.t) ->
      check int "prefix stable" t.period first_big.(i).period)
    first_small

let prop_generated_sets_valid =
  qtest "generated sets are well-formed"
    QCheck2.Gen.(pair (int_range 1 500) (int_range 1 40))
    (fun (seed, n) ->
      let ts =
        Workload.Generator.random_taskset ~rng:(Util.Rng.create ~seed) ~n ()
      in
      Model.Taskset.size ts = n
      && Model.Taskset.utilization ts > 0.0
      && Array.for_all
           (fun (t : Model.Task.t) -> t.wcet >= 1 && t.wcet <= t.deadline)
           (Model.Taskset.tasks ts))

(* Scenario specs come from split streams: spec [i] is a function of
   [seed] and [i] alone, so growing the campaign's [--count] never
   changes an already-generated scenario — falsification indices stay
   replayable forever. *)
let test_scenario_stream_split_invariance () =
  let long = Workload.Generator.scenario_specs ~seed:13 ~count:50 () in
  let short = Workload.Generator.scenario_specs ~seed:13 ~count:10 () in
  List.iteri
    (fun i s ->
      check bool
        (Printf.sprintf "spec %d independent of count" i)
        true
        (s = List.nth long i))
    short

(* Every generated scenario spec is structurally well-formed: object
   indices within the declared tables, nested locks above their outer
   lock (the acyclic acquisition order), admissible utilization, and a
   realizable program for every task. *)
let prop_scenario_specs_well_formed =
  qtest ~count:40 "scenario specs are well-formed"
    QCheck2.Gen.(int_range 1 2_000)
    (fun seed ->
      let specs = Workload.Generator.scenario_specs ~seed ~count:4 () in
      List.for_all
        (fun (s : Workload.Generator.spec) ->
          let rec seg_ok (seg : Workload.Generator.seg) =
            match seg with
            | S_branch (a, b) -> List.for_all seg_ok a && List.for_all seg_ok b
            | S_repeat (n, body) -> n >= 0 && List.for_all seg_ok body
            | S_compute d -> d >= 0
            | S_critical { lock; body; nested } -> (
              lock >= 0 && lock < s.s_locks && body >= 0
              && match nested with
                 | None -> true
                 | Some (l2, b2) -> l2 > lock && l2 < s.s_locks && b2 >= 0)
            | S_cond_wait { lock; wq; before; after } ->
              lock >= 0 && lock < s.s_locks && wq >= 0 && wq < s.s_waitqs
              && before >= 0 && after >= 0
            | S_wait w | S_signal w -> w >= 0 && w < s.s_waitqs
            | S_timed_wait (w, d) -> w >= 0 && w < s.s_waitqs && d > 0
            | S_send m | S_recv m ->
              m >= 0 && m < List.length s.s_mailboxes
            | S_state_write m | S_state_read m ->
              m >= 0 && m < List.length s.s_state_msgs
            | S_delay d -> d > 0
            | S_alloc p | S_free p -> p >= 0 && p < List.length s.s_pools
          in
          (* alloc/free balance: every job returns what it took
             (counting through branch arms and loop iterations — a
             burst loop retains blocks across iterations but the tail
             frees them all), and each pool's capacity covers the sum
             of its users' worst-path peaks *)
          let task_pool_walk p (t : Workload.Generator.task_spec) =
            let rec walk (cur, peak) (seg : Workload.Generator.seg) =
              match seg with
              | S_alloc q when q = p ->
                let c = cur + 1 in
                (c, max peak c)
              | S_free q when q = p -> (cur - 1, peak)
              | S_branch (a, b) ->
                let ca, pa = List.fold_left walk (cur, peak) a in
                let cb, pb = List.fold_left walk (cur, peak) b in
                (max ca cb, max pa pb)
              | S_repeat (n, body) ->
                if n = 0 then (cur, peak)
                else
                  let c1, p1 = List.fold_left walk (cur, peak) body in
                  let d = c1 - cur in
                  (cur + (n * d), if d > 0 then p1 + ((n - 1) * d) else p1)
              | _ -> (cur, peak)
            in
            List.fold_left walk (0, 0) t.g_segs
          in
          let pools_balanced =
            List.for_all
              (fun (t : Workload.Generator.task_spec) ->
                List.for_all
                  (fun p -> fst (task_pool_walk p t) = 0)
                  (List.init (List.length s.s_pools) Fun.id))
              s.s_tasks
            && List.for_all Fun.id
                 (List.mapi
                    (fun p (cap, bytes) ->
                      let demand =
                        List.fold_left
                          (fun acc t -> acc + snd (task_pool_walk p t))
                          0 s.s_tasks
                      in
                      cap >= demand && bytes > 0)
                    s.s_pools)
          in
          let ids =
            List.map (fun (t : Workload.Generator.task_spec) -> t.g_id) s.s_tasks
          in
          pools_balanced
          && List.length (List.sort_uniq compare ids) = List.length ids
          && List.for_all
               (fun (t : Workload.Generator.task_spec) ->
                 t.g_period > 0 && List.for_all seg_ok t.g_segs)
               s.s_tasks
          && Workload.Generator.spec_utilization s <= 1.0
          &&
          (* realization allocates objects and declares WCETs *)
          let sc = Workload.Generator.realize s in
          Model.Taskset.size sc.taskset = List.length s.s_tasks)
        specs)

(* The structured-control-flow families were added by APPENDING their
   rng draws after every existing draw in [spec_of], so streams
   generated before the change replay with identical names, periods,
   release kinds and object topologies — falsification indices recorded
   by old campaigns still reproduce the same scenarios.  The golden
   strings below were captured from the straight-line generator;
   only segment lists and the burst families' appended pools may
   grow. *)
let test_stream_stability_golden () =
  let golden =
    [
      "gen-0-robotics|2|1|0|1|1:32000000:false;2:64000000:false;\
       3:4000000:false;4:16000000:false;5:32000000:false;6:32000000:false;\
       7:32000000:false;8:64000000:false";
      "gen-1-robotics|1|1|0|1|1:4000000:false;2:8000000:false;\
       3:64000000:false;4:4000000:false;5:32000000:false;6:4000000:false;\
       7:4000000:false;8:32000000:false";
      "gen-2-avionics|2|1|1|2|1:50000000:false;2:25000000:false;\
       3:25000000:false;4:50000000:false;5:50000000:false";
      "gen-3-automotive|0|0|0|1|1:5000000:false;2:50000000:false;\
       3:50000000:false;4:100000000:false;5:5000000:false;6:50000000:true;\
       7:50000000:false;8:20000000:false";
      "gen-4-generic|2|0|1|0|1:8000000:false;2:5000000:false;\
       3:40000000:false;4:50000000:false;5:5000000:true;6:250000000:false";
      "gen-5-avionics|2|0|1|2|1:50000000:false;2:25000000:false;\
       3:50000000:false;4:50000000:false;5:50000000:false;6:100000000:false";
    ]
  in
  let stable_sig (s : Workload.Generator.spec) =
    Printf.sprintf "%s|%d|%d|%d|%d|%s" s.s_name s.s_locks s.s_waitqs
      (List.length s.s_mailboxes)
      (List.length s.s_state_msgs)
      (String.concat ";"
         (List.map
            (fun (t : Workload.Generator.task_spec) ->
              Printf.sprintf "%d:%d:%b" t.g_id t.g_period t.g_sporadic)
            s.s_tasks))
  in
  let specs = Workload.Generator.scenario_specs ~seed:42 ~count:6 () in
  List.iteri
    (fun i s ->
      check string
        (Printf.sprintf "spec %d stable fields unchanged" i)
        (List.nth golden i) (stable_sig s))
    specs;
  (* ...and the appended draws really do produce the new families *)
  let specs = Workload.Generator.scenario_specs ~seed:42 ~count:40 () in
  let has pred =
    List.exists
      (fun (s : Workload.Generator.spec) ->
        List.exists
          (fun (t : Workload.Generator.task_spec) -> List.exists pred t.g_segs)
          s.s_tasks)
      specs
  in
  check bool "branchy segments appear" true
    (has (function Workload.Generator.S_branch _ -> true | _ -> false));
  check bool "loopy segments appear" true
    (has (function Workload.Generator.S_repeat _ -> true | _ -> false));
  check bool "burst alloc loops appear" true
    (has (function
      | Workload.Generator.S_repeat (_, body) ->
        List.exists
          (function Workload.Generator.S_alloc _ -> true | _ -> false)
          body
      | _ -> false))

let test_presets_sane () =
  List.iter
    (fun (name, ts, max_u) ->
      let u = Model.Taskset.utilization ts in
      check bool (name ^ " utilization sane") true (u > 0.2 && u < max_u))
    [
      ("table2", Workload.Presets.table2, 0.9);
      ("engine", Workload.Presets.engine_control, 1.0);
      ("avionics", Workload.Presets.avionics, 1.0);
      ("voice", Workload.Presets.voice, 1.0);
    ];
  check (float 0.001) "table2 is the paper's 0.884" 0.884
    (Model.Taskset.utilization Workload.Presets.table2);
  check int "troublesome rank names tau5" 5
    (Model.Taskset.get Workload.Presets.table2
       Workload.Presets.table2_troublesome_rank)
      .id

let suite =
  [
    test_case "period buckets" `Quick test_period_buckets;
    test_case "target utilization" `Quick test_target_utilization;
    test_case "blocking-call mix" `Quick test_blocking_call_mix;
    test_case "batch reproducibility" `Quick test_batch_reproducibility;
    prop_generated_sets_valid;
    test_case "scenario stream split invariance" `Quick
      test_scenario_stream_split_invariance;
    prop_scenario_specs_well_formed;
    test_case "stream stability golden" `Quick test_stream_stability_golden;
    test_case "presets" `Quick test_presets_sane;
  ]
