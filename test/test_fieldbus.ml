(* The fieldbus substrate: priority arbitration, transmission timing,
   delivery fan-out. *)

open Alcotest

let ms = Model.Time.ms
let us = Model.Time.us

let frame ?(enqueued_at = 0) ~id ~src payload =
  { Fieldbus.Bus.frame_id = id; src_node = src; payload; enqueued_at }

let setup ?(bitrate = 1_000_000) () =
  let engine = Sim.Engine.create () in
  let bus = Fieldbus.Bus.create ~engine ~bitrate_bps:bitrate () in
  (engine, bus)

let test_transmission_time () =
  (* 47 overhead bits + 32 payload bits at 1 Mbit/s = 79 us *)
  let engine, bus = setup () in
  let delivered = ref None in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ ->
      delivered := Some (Sim.Engine.now engine));
  Fieldbus.Bus.send bus (frame ~id:1 ~src:0 [| 5 |]);
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  check (option int) "79us frame" (Some (us 79)) !delivered;
  check int "busy time" (us 79) (Fieldbus.Bus.bus_busy_time bus)

let test_priority_arbitration () =
  let engine, bus = setup () in
  let order = ref [] in
  Fieldbus.Bus.subscribe bus ~node:9 (fun f ->
      order := f.Fieldbus.Bus.frame_id :: !order);
  (* node 0 wins the bus with id 5; while it transmits, 3 and 1 queue:
     lower id goes first when the bus frees *)
  Fieldbus.Bus.send bus (frame ~id:5 ~src:0 [| 1 |]);
  ignore
    (Sim.Engine.schedule engine ~at:(us 10) (fun () ->
         Fieldbus.Bus.send bus (frame ~id:3 ~src:1 [| 2 |]);
         Fieldbus.Bus.send bus (frame ~id:1 ~src:2 [| 3 |])));
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  check (list int) "arbitration order" [ 5; 1; 3 ] (List.rev !order);
  check int "three frames" 3 (Fieldbus.Bus.frames_sent bus)

let test_no_self_delivery () =
  let engine, bus = setup () in
  let got = ref 0 in
  Fieldbus.Bus.subscribe bus ~node:0 (fun _ -> incr got);
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> incr got);
  Fieldbus.Bus.send bus (frame ~id:1 ~src:0 [| 1 |]);
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  check int "only the other node hears it" 1 !got

let test_arbitration_delay_tracking () =
  let engine, bus = setup () in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> ());
  Fieldbus.Bus.send bus (frame ~id:2 ~src:0 [| 1 |]);
  Fieldbus.Bus.send bus (frame ~id:4 ~src:0 [| 2 |]);
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  (* second frame waited for the first one's 79us *)
  check int "max arbitration delay" (us 79)
    (Fieldbus.Bus.max_arbitration_delay bus);
  ignore ms

let test_validation () =
  let _, bus = setup () in
  check bool "negative id rejected" true
    (try
       Fieldbus.Bus.send bus (frame ~id:(-1) ~src:0 [| 1 |]);
       false
     with Invalid_argument _ -> true);
  check bool "oversized payload rejected" true
    (try
       Fieldbus.Bus.send bus (frame ~id:1 ~src:0 [| 1; 2; 3 |]);
       false
     with Invalid_argument _ -> true);
  check bool "bad bitrate rejected" true
    (try
       let engine = Sim.Engine.create () in
       ignore (Fieldbus.Bus.create ~engine ~bitrate_bps:0 ());
       false
     with Invalid_argument _ -> true)

let test_saturation () =
  (* 2 Mbit/s bus: a 79-bit frame takes 39.5us -> 1000 frames need
     ~39.5ms of bus time. *)
  let engine, bus = setup ~bitrate:2_000_000 () in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> ());
  for i = 1 to 1000 do
    Fieldbus.Bus.send bus (frame ~id:(i mod 32) ~src:0 [| i |])
  done;
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  check int "all delivered" 1000 (Fieldbus.Bus.frames_sent bus);
  check int "none pending" 0 (Fieldbus.Bus.pending bus);
  check bool "bus time accounted" true
    (Fieldbus.Bus.bus_busy_time bus = 1000 * ((47 + 32) * 500))

let test_frame_overhead_bits () =
  (* extended frame overhead: 67 + 32 bits at 1 Mbit/s = 99 us *)
  let engine = Sim.Engine.create () in
  let bus =
    Fieldbus.Bus.create ~engine ~bitrate_bps:1_000_000 ~frame_overhead_bits:67
      ()
  in
  let at = ref None in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> at := Some (Sim.Engine.now engine));
  Fieldbus.Bus.send bus (frame ~id:1 ~src:0 [| 5 |]);
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100);
  check (option int) "99us with 67-bit overhead" (Some (us 99)) !at

let test_send_at () =
  let engine, bus = setup () in
  let node = Fieldbus.Node.create ~bus ~id:0 () in
  let rx = ref [] in
  Fieldbus.Bus.subscribe bus ~node:1 (fun f ->
      rx := (Sim.Engine.now engine, f.Fieldbus.Bus.payload.(0)) :: !rx);
  Fieldbus.Node.send_at node ~at:(ms 1) ~frame_id:3 [| 7 |];
  Fieldbus.Node.send_at node ~at:(ms 2) ~frame_id:3 [| 8 |];
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100);
  check
    (list (pair int int))
    "sampling loop timing"
    [ (ms 1 + us 79, 7); (ms 2 + us 79, 8) ]
    (List.rev !rx);
  check int "node tx accounting" 2 (Fieldbus.Node.frames_sent node)

let test_accept_filter () =
  let engine, bus = setup () in
  let _tx = Fieldbus.Node.create ~bus ~id:0 () in
  let rx_node = Fieldbus.Node.create ~bus ~id:1 () in
  let odd = ref [] and all = ref [] in
  Fieldbus.Node.on_frame rx_node
    ~accept:(fun f -> f.Fieldbus.Bus.frame_id mod 2 = 1)
    (fun f -> odd := f.Fieldbus.Bus.frame_id :: !odd);
  Fieldbus.Node.on_frame rx_node (fun f ->
      all := f.Fieldbus.Bus.frame_id :: !all);
  List.iter
    (fun id -> Fieldbus.Bus.send bus (frame ~id ~src:0 [| id |]))
    [ 4; 5; 6; 7 ];
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100);
  check (list int) "filtered classes" [ 5; 7 ] (List.rev !odd);
  check (list int) "unfiltered sees all" [ 4; 5; 6; 7 ] (List.rev !all);
  check int "received counts accepted only" 6 (Fieldbus.Node.frames_received rx_node)

let test_one_create_per_id () =
  let _, bus = setup () in
  let _a = Fieldbus.Node.create ~bus ~id:3 () in
  check bool "duplicate station id rejected" true
    (try
       ignore (Fieldbus.Node.create ~bus ~id:3 ());
       false
     with Invalid_argument _ -> true);
  (* a distinct id is still fine *)
  ignore (Fieldbus.Node.create ~bus ~id:4 ())

let test_wire_fault_drop () =
  let engine, bus = setup () in
  let got = ref 0 in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> incr got);
  (* drop every 2nd frame, once per frame at completion *)
  let n = ref 0 in
  Fieldbus.Bus.set_fault bus
    (Some
       (fun f ->
         incr n;
         if !n mod 2 = 0 then None else Some f));
  for i = 1 to 6 do
    Fieldbus.Bus.send bus (frame ~id:i ~src:0 [| i |])
  done;
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:1000);
  check int "half delivered" 3 !got;
  check int "drops counted" 3 (Fieldbus.Bus.frames_dropped bus);
  check int "dropped frames still occupied the wire" 6
    (Fieldbus.Bus.frames_sent bus)

let test_link_filter () =
  let engine, bus = setup () in
  let at1 = ref 0 and at2 = ref 0 in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> incr at1);
  Fieldbus.Bus.subscribe bus ~node:2 (fun _ -> incr at2);
  (* partition 0 <-> 1: node 2 still hears node 0's broadcast *)
  Fieldbus.Bus.set_link_filter bus
    (Some (fun ~src ~dst -> not (src = 0 && dst = 1)));
  Fieldbus.Bus.send bus (frame ~id:1 ~src:0 [| 1 |]);
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100);
  check int "partitioned link silent" 0 !at1;
  check int "other receiver unaffected" 1 !at2

let test_tap_observes_outcomes () =
  let engine, bus = setup () in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> ());
  let n = ref 0 in
  Fieldbus.Bus.set_fault bus
    (Some
       (fun f ->
         incr n;
         if !n = 2 then None else Some f));
  let txs = ref [] and drops = ref [] in
  Fieldbus.Bus.set_tap bus
    (Some
       (function
         | Fieldbus.Bus.Tx { frame = f; arb_delay } ->
           txs := (f.Fieldbus.Bus.frame_id, arb_delay) :: !txs
         | Fieldbus.Bus.Dropped f ->
           drops := f.Fieldbus.Bus.frame_id :: !drops));
  Fieldbus.Bus.send bus (frame ~id:1 ~src:0 [| 1 |]);
  Fieldbus.Bus.send bus (frame ~id:2 ~src:0 [| 2 |]);
  Fieldbus.Bus.send bus (frame ~id:3 ~src:0 [| 3 |]);
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100);
  (* frame 1 went straight out; frame 3 queued behind 1 and 2 *)
  check
    (list (pair int int))
    "tx taps with arbitration delay"
    [ (1, 0); (3, 2 * us 79) ]
    (List.rev !txs);
  check (list int) "dropped tap sees the eaten frame" [ 2 ] !drops

let suite =
  [
    test_case "transmission time" `Quick test_transmission_time;
    test_case "priority arbitration" `Quick test_priority_arbitration;
    test_case "no self delivery" `Quick test_no_self_delivery;
    test_case "arbitration delay tracking" `Quick test_arbitration_delay_tracking;
    test_case "validation" `Quick test_validation;
    test_case "saturation" `Quick test_saturation;
    test_case "frame overhead bits" `Quick test_frame_overhead_bits;
    test_case "send_at" `Quick test_send_at;
    test_case "accept filter" `Quick test_accept_filter;
    test_case "one create per id" `Quick test_one_create_per_id;
    test_case "wire fault drop" `Quick test_wire_fault_drop;
    test_case "link filter" `Quick test_link_filter;
    test_case "tap observes outcomes" `Quick test_tap_observes_outcomes;
  ]
