(* The fieldbus substrate: priority arbitration, transmission timing,
   delivery fan-out. *)

open Alcotest

let ms = Model.Time.ms
let us = Model.Time.us

let frame ?(enqueued_at = 0) ~id ~src payload =
  { Fieldbus.Bus.frame_id = id; src_node = src; payload; enqueued_at }

let setup ?(bitrate = 1_000_000) () =
  let engine = Sim.Engine.create () in
  let bus = Fieldbus.Bus.create ~engine ~bitrate_bps:bitrate () in
  (engine, bus)

let test_transmission_time () =
  (* 47 overhead bits + 32 payload bits at 1 Mbit/s = 79 us *)
  let engine, bus = setup () in
  let delivered = ref None in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ ->
      delivered := Some (Sim.Engine.now engine));
  Fieldbus.Bus.send bus (frame ~id:1 ~src:0 [| 5 |]);
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  check (option int) "79us frame" (Some (us 79)) !delivered;
  check int "busy time" (us 79) (Fieldbus.Bus.bus_busy_time bus)

let test_priority_arbitration () =
  let engine, bus = setup () in
  let order = ref [] in
  Fieldbus.Bus.subscribe bus ~node:9 (fun f ->
      order := f.Fieldbus.Bus.frame_id :: !order);
  (* node 0 wins the bus with id 5; while it transmits, 3 and 1 queue:
     lower id goes first when the bus frees *)
  Fieldbus.Bus.send bus (frame ~id:5 ~src:0 [| 1 |]);
  ignore
    (Sim.Engine.schedule engine ~at:(us 10) (fun () ->
         Fieldbus.Bus.send bus (frame ~id:3 ~src:1 [| 2 |]);
         Fieldbus.Bus.send bus (frame ~id:1 ~src:2 [| 3 |])));
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  check (list int) "arbitration order" [ 5; 1; 3 ] (List.rev !order);
  check int "three frames" 3 (Fieldbus.Bus.frames_sent bus)

let test_no_self_delivery () =
  let engine, bus = setup () in
  let got = ref 0 in
  Fieldbus.Bus.subscribe bus ~node:0 (fun _ -> incr got);
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> incr got);
  Fieldbus.Bus.send bus (frame ~id:1 ~src:0 [| 1 |]);
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  check int "only the other node hears it" 1 !got

let test_arbitration_delay_tracking () =
  let engine, bus = setup () in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> ());
  Fieldbus.Bus.send bus (frame ~id:2 ~src:0 [| 1 |]);
  Fieldbus.Bus.send bus (frame ~id:4 ~src:0 [| 2 |]);
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  (* second frame waited for the first one's 79us *)
  check int "max arbitration delay" (us 79)
    (Fieldbus.Bus.max_arbitration_delay bus);
  ignore ms

let test_validation () =
  let _, bus = setup () in
  check bool "negative id rejected" true
    (try
       Fieldbus.Bus.send bus (frame ~id:(-1) ~src:0 [| 1 |]);
       false
     with Invalid_argument _ -> true);
  check bool "oversized payload rejected" true
    (try
       Fieldbus.Bus.send bus (frame ~id:1 ~src:0 [| 1; 2; 3 |]);
       false
     with Invalid_argument _ -> true);
  check bool "bad bitrate rejected" true
    (try
       let engine = Sim.Engine.create () in
       ignore (Fieldbus.Bus.create ~engine ~bitrate_bps:0 ());
       false
     with Invalid_argument _ -> true)

let test_saturation () =
  (* 2 Mbit/s bus: a 79-bit frame takes 39.5us -> 1000 frames need
     ~39.5ms of bus time. *)
  let engine, bus = setup ~bitrate:2_000_000 () in
  Fieldbus.Bus.subscribe bus ~node:1 (fun _ -> ());
  for i = 1 to 1000 do
    Fieldbus.Bus.send bus (frame ~id:(i mod 32) ~src:0 [| i |])
  done;
  check bool "queue drained" true (Sim.Engine.run_bounded engine ~max_events:100_000);
  check int "all delivered" 1000 (Fieldbus.Bus.frames_sent bus);
  check int "none pending" 0 (Fieldbus.Bus.pending bus);
  check bool "bus time accounted" true
    (Fieldbus.Bus.bus_busy_time bus = 1000 * ((47 + 32) * 500))

let suite =
  [
    test_case "transmission time" `Quick test_transmission_time;
    test_case "priority arbitration" `Quick test_priority_arbitration;
    test_case "no self delivery" `Quick test_no_self_delivery;
    test_case "arbitration delay tracking" `Quick test_arbitration_delay_tracking;
    test_case "validation" `Quick test_validation;
    test_case "saturation" `Quick test_saturation;
  ]
