(* Fault-injection harness: plan DSL round-trip, the empty-plan
   differential (enforcement installed but never exercised must be
   bit-identical to the pre-enforcement kernel), overrun policies,
   skip-over overload shedding, and the resilience report. *)

open Alcotest

let ms = Model.Time.ms
let us = Model.Time.us

(* ------------------------------------------------------------------ *)
(* Plan DSL *)

let full_plan : Fault.Plan.t =
  [
    Wcet_scale { tid = 2; pct = 400; from_job = 1 };
    Wcet_add { tid = 1; extra = ms 3; from_job = 2 };
    Release_jitter { tid = 1; amplitude = us 500 };
    Irq_storm { irq = 9; at = ms 20; count = 40; spacing = us 100 };
    Irq_drop { irq = 9; one_in = 3 };
    Lost_signal { wq = 0; one_in = 4 };
    Sporadic_burst { tid = 3; at = ms 50; count = 3; spacing = ms 1 };
    Clock_drift { ppm = 500 };
    Frame_drop { one_in = 16 };
    Frame_corrupt { one_in = 32 };
    Node_crash { node = 1; at = ms 50 };
    Node_restart { node = 1; at = ms 200 };
    Link_partition { a = 0; b = 2; from_ = ms 10; until = ms 60 };
  ]

let test_plan_roundtrip () =
  match Fault.Plan.parse (Fault.Plan.render full_plan) with
  | Ok p -> check bool "parse (render p) = p" true (p = full_plan)
  | Error e -> fail ("round-trip failed: " ^ e)

let test_plan_parse () =
  check bool "empty string is the empty plan" true
    (Fault.Plan.parse "" = Ok Fault.Plan.empty);
  check bool "from defaults to job 1" true
    (Fault.Plan.parse "wcet-scale:tid=2,pct=400"
    = Ok [ Wcet_scale { tid = 2; pct = 400; from_job = 1 } ]);
  check bool "bare integers are nanoseconds" true
    (Fault.Plan.parse "jitter:tid=1,amp=750"
    = Ok [ Release_jitter { tid = 1; amplitude = 750 } ]);
  let rejected s =
    match Fault.Plan.parse s with Ok _ -> false | Error _ -> true
  in
  check bool "unknown kind rejected" true (rejected "bogus:tid=1");
  check bool "one-in below 2 rejected" true (rejected "irq-drop:irq=9,one-in=1");
  check bool "bad duration rejected" true (rejected "wcet-add:tid=1,extra=3kg");
  check bool "missing key rejected" true (rejected "wcet-scale:tid=2");
  check bool "negative pct rejected" true (rejected "wcet-scale:tid=2,pct=-50")

let test_plan_parse_fabric () =
  check bool "node-crash parses" true
    (Fault.Plan.parse "node-crash:node=2,at=50ms"
    = Ok [ Node_crash { node = 2; at = ms 50 } ]);
  check bool "link-partition parses" true
    (Fault.Plan.parse "link-partition:a=0,b=1,from=10ms,until=60ms"
    = Ok [ Link_partition { a = 0; b = 1; from_ = ms 10; until = ms 60 } ]);
  let rejected s =
    match Fault.Plan.parse s with Ok _ -> false | Error _ -> true
  in
  check bool "frame-drop one-in below 2 rejected" true
    (rejected "frame-drop:one-in=1");
  check bool "frame-corrupt one-in below 2 rejected" true
    (rejected "frame-corrupt:one-in=0");
  check bool "negative node rejected" true
    (rejected "node-crash:node=-1,at=50ms");
  check bool "node-restart missing at rejected" true
    (rejected "node-restart:node=1");
  check bool "self-partition rejected" true
    (rejected "link-partition:a=1,b=1,from=0,until=10ms");
  check bool "inverted partition window rejected" true
    (rejected "link-partition:a=0,b=1,from=60ms,until=10ms")

(* ------------------------------------------------------------------ *)
(* Empty-plan differential *)

(* The acceptance differential: with the empty plan, a kernel with
   budgets installed (declared WCETs, notify-only) must produce exactly
   the trace of the plain pre-enforcement kernel — same entries, busy
   time and context switches. *)
let enforcement_on : Emeralds.Kernel.enforcement =
  {
    Emeralds.Kernel.budget_of = Fault.Inject.declared_budgets;
    policy = Emeralds.Kernel.Notify_only;
    miss = Emeralds.Kernel.Miss_record;
    shed_one_in = None;
  }

let test_empty_plan_differential () =
  let sc = Workload.Scenario.overrun_demo () in
  let cfg =
    Fault.Inject.default_config ~scenario:sc ~enforcement:enforcement_on ()
  in
  let out = Fault.Inject.run cfg in
  check (list (pair int string)) "no activations" [] out.activations;
  (* the same simulation, hand-built without any enforcement *)
  let plain =
    Emeralds.Kernel.create ~cost:cfg.cost ~spec:cfg.spec
      ~taskset:sc.Workload.Scenario.taskset ~programs:sc.Workload.Scenario.programs
      ()
  in
  Emeralds.Kernel.run plain ~until:cfg.horizon;
  let sig_of k =
    let tr = Emeralds.Kernel.trace k in
    ( Sim.Trace.entries tr,
      Sim.Trace.busy_time tr,
      Sim.Trace.context_switches tr )
  in
  check bool "trace bit-identical to pre-enforcement kernel" true
    (sig_of out.kernel = sig_of plain)

(* ------------------------------------------------------------------ *)
(* Overrun policies *)

let overrun_plan : Fault.Plan.t =
  [ Wcet_scale { tid = 2; pct = 400; from_job = 1 } ]

let run_demo ~policy ?(miss = Emeralds.Kernel.Miss_record) ?shed_one_in () =
  let sc = Workload.Scenario.overrun_demo () in
  let cfg =
    Fault.Inject.default_config ~scenario:sc ~plan:overrun_plan
      ~enforcement:
        {
          Emeralds.Kernel.budget_of = Fault.Inject.declared_budgets;
          policy;
          miss;
          shed_one_in;
        }
      ()
  in
  Fault.Inject.run cfg

let enf_stat out tid =
  List.find
    (fun (s : Emeralds.Kernel.enf_stats) -> s.e_tid = tid)
    (Emeralds.Kernel.enforcement_stats out.Fault.Inject.kernel)

let test_policy_notify () =
  let out = run_demo ~policy:Emeralds.Kernel.Notify_only () in
  let s = enf_stat out 2 in
  check bool "overruns detected" true (s.e_overruns > 0);
  check int "notify kills nothing" 0 s.e_kills;
  check bool "detection instant recorded" true (s.e_first_detection <> None)

let test_policy_kill () =
  let out = run_demo ~policy:Emeralds.Kernel.Kill_job () in
  let s = enf_stat out 2 in
  check bool "offending jobs killed" true (s.e_kills > 0);
  (* killing the hog protects the lower-priority task *)
  let misses_of out tid =
    (List.find
       (fun (s : Emeralds.Kernel.task_stats) -> s.tid = tid)
       (Emeralds.Kernel.stats out.Fault.Inject.kernel))
      .misses
  in
  let notify = run_demo ~policy:Emeralds.Kernel.Notify_only () in
  check bool "tau3 protected vs notify-only" true
    (misses_of out 3 <= misses_of notify 3)

let test_policy_skip_next () =
  let out = run_demo ~policy:Emeralds.Kernel.Skip_next () in
  let s = enf_stat out 2 in
  check bool "kills recorded" true (s.e_kills > 0);
  check bool "next releases shed" true (s.e_sheds > 0)

let test_miss_kill () =
  let out =
    run_demo ~policy:Emeralds.Kernel.Notify_only ~miss:Emeralds.Kernel.Miss_kill
      ()
  in
  let s = enf_stat out 2 in
  check bool "late jobs killed by the miss policy" true (s.e_kills > 0)

(* ------------------------------------------------------------------ *)
(* Live-block quota enforcement *)

(* alloc-demo's mixer holds 3 blocks at once: a 1-block quota must
   trip (Quota_exceeded in the trace, quota_hits counted), while the
   analyzer's own declared quotas — the peak-live upper bounds — never
   fire on the conforming program. *)
let test_mem_quota () =
  let sc = Workload.Scenario.alloc_demo () in
  let run quota_of =
    let cfg =
      Fault.Inject.default_config ~scenario:sc
        ~mem_enforcement:{ Emeralds.Kernel.quota_of; on_exceed = Notify_only }
        ()
    in
    (Fault.Inject.run cfg).kernel
  in
  let tight = run (fun _ -> Some 1) in
  let hits k =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Emeralds.Kernel.quota_hits k)
  in
  check bool "1-block quota trips" true (hits tight > 0);
  check bool "Quota_exceeded traced" true
    (List.exists
       (fun (s : Sim.Trace.stamped) ->
         match s.entry with
         | Sim.Trace.Quota_exceeded { quota = 1; _ } -> true
         | _ -> false)
       (Sim.Trace.entries (Emeralds.Kernel.trace tight)));
  let declared = run (Fault.Inject.declared_quotas sc) in
  check int "declared peak-live quotas never fire" 0 (hits declared)

(* ------------------------------------------------------------------ *)
(* Skip-over shedding bound *)

(* A permanently overloaded task (program demands 1.5 periods every
   job) with one-in-3 shedding: the skip-over guarantee is at most one
   shed in any 3 consecutive arrivals. *)
let test_shed_ratio () =
  let t = Model.Task.make ~id:1 ~period:(ms 10) ~wcet:(ms 10) () in
  let k =
    Emeralds.Kernel.create ~cost:Sim.Cost.zero ~spec:Emeralds.Sched.Rm
      ~taskset:(Model.Taskset.of_list [ t ])
      ~programs:(fun _ -> [ Emeralds.Program.compute (ms 15) ])
      ()
  in
  Emeralds.Kernel.set_enforcement k
    (Some
       {
         Emeralds.Kernel.budget_of = (fun _ -> None);
         policy = Emeralds.Kernel.Notify_only;
         miss = Emeralds.Kernel.Miss_record;
         shed_one_in = Some 3;
       });
  Emeralds.Kernel.run k ~until:(ms 100);
  let s =
    List.find
      (fun (s : Emeralds.Kernel.enf_stats) -> s.e_tid = 1)
      (Emeralds.Kernel.enforcement_stats k)
  in
  (* 10 arrivals in 100 ms: at most ceil(10/3) sheds, and overload is
     permanent so the shedder does fire *)
  check bool "shedder fires under permanent overload" true (s.e_sheds > 0);
  check bool "at most one in three arrivals shed" true (s.e_sheds <= 4);
  (* the trace records every shed *)
  let shed_entries =
    List.length
      (List.filter
         (fun (st : Sim.Trace.stamped) ->
           match st.entry with Sim.Trace.Job_shed _ -> true | _ -> false)
         (Sim.Trace.entries (Emeralds.Kernel.trace k)))
  in
  check int "trace sheds match stats" s.e_sheds shed_entries

let test_shedding_degrades_gracefully () =
  let sc () = Workload.Scenario.storm_demo () in
  let burst : Fault.Plan.t =
    [ Sporadic_burst { tid = 3; at = ms 50; count = 5; spacing = us 500 } ]
  in
  let run ?shed_one_in () =
    let cfg =
      Fault.Inject.default_config ~scenario:(sc ()) ~plan:burst
        ~enforcement:
          {
            Emeralds.Kernel.budget_of = Fault.Inject.declared_budgets;
            policy = Emeralds.Kernel.Notify_only;
            miss = Emeralds.Kernel.Miss_record;
            shed_one_in;
          }
        ()
    in
    Fault.Inject.run cfg
  in
  let misses out = Emeralds.Kernel.total_misses out.Fault.Inject.kernel in
  let unshed = run () in
  let shed = run ~shed_one_in:2 () in
  let sheds =
    List.fold_left
      (fun acc (s : Emeralds.Kernel.enf_stats) -> acc + s.e_sheds)
      0
      (Emeralds.Kernel.enforcement_stats shed.Fault.Inject.kernel)
  in
  check bool "burst beyond minimum interarrival misses deadlines" true
    (misses unshed > 0);
  check bool "shedding engaged" true (sheds > 0);
  check bool "shedding reduces misses" true (misses shed < misses unshed)

(* ------------------------------------------------------------------ *)
(* Resilience report *)

let test_report_clean () =
  let sc = Workload.Scenario.overrun_demo () in
  let cfg =
    Fault.Inject.default_config ~scenario:sc ~enforcement:enforcement_on ()
  in
  let r = Fault.Report.run cfg in
  check bool "no violations on the clean demo" false (Fault.Report.violations r);
  match r.r_cells with
  | cell :: _ ->
    check string "first cell is the differential guard" "no-fault" cell.c_label;
    check int "no misses" 0 cell.c_misses;
    check bool "trace matches the enforcement-free baseline" true
      cell.c_matches_baseline
  | [] -> fail "report has no cells"

let test_report_detects_and_falsifies () =
  let sc = Workload.Scenario.overrun_demo () in
  let cfg =
    Fault.Inject.default_config ~scenario:sc ~plan:overrun_plan
      ~enforcement:enforcement_on ()
  in
  let r = Fault.Report.run cfg in
  check bool "violations reported" true (Fault.Report.violations r);
  let cell =
    List.find (fun (c : Fault.Report.cell) -> c.c_label <> "no-fault") r.r_cells
  in
  check bool "faulted cell diverges from baseline" false cell.c_matches_baseline;
  check bool "overruns counted" true (cell.c_overruns > 0);
  (match cell.c_detection_latency with
  | Some l -> check bool "detection latency non-negative" true (l >= 0)
  | None -> fail "detection latency missing");
  check bool "a static prediction was falsified" true (cell.c_falsified <> []);
  check bool "rta or absint named as source" true
    (List.for_all
       (fun (p : Fault.Report.prediction) ->
         p.p_source = "rta" || p.p_source = "absint")
       cell.c_falsified)

let suite =
  [
    test_case "plan: render/parse round-trip" `Quick test_plan_roundtrip;
    test_case "plan: parse cases" `Quick test_plan_parse;
    test_case "plan: fabric clauses" `Quick test_plan_parse_fabric;
    test_case "empty plan differential" `Quick test_empty_plan_differential;
    test_case "policy: notify-only" `Quick test_policy_notify;
    test_case "policy: kill-job" `Quick test_policy_kill;
    test_case "policy: skip-next" `Quick test_policy_skip_next;
    test_case "policy: miss-kill" `Quick test_miss_kill;
    test_case "mem: live-block quota enforcement" `Quick test_mem_quota;
    test_case "shed: skip-over bound" `Quick test_shed_ratio;
    test_case "shed: graceful degradation" `Quick
      test_shedding_degrades_gracefully;
    test_case "report: clean demo" `Quick test_report_clean;
    test_case "report: detection and falsification" `Quick
      test_report_detects_and_falsifies;
  ]
