let () =
  Alcotest.run "emeralds"
    [
      ("util", Test_util.suite);
      ("model", Test_model.suite);
      ("sim", Test_sim.suite);
      ("state-msg", Test_state_msg.suite);
      ("readyq", Test_readyq.suite);
      ("sched", Test_sched.suite);
      ("kernel", Test_kernel.suite);
      ("semaphores", Test_sem.suite);
      ("ipc", Test_ipc.suite);
      ("analysis", Test_analysis.suite);
      ("workload", Test_workload.suite);
      ("fieldbus", Test_fieldbus.suite);
      ("footprint", Test_footprint.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("obs", Test_obs.suite);
      ("blame", Test_blame.suite);
      ("lint", Test_lint.suite);
      ("absint", Test_absint.suite);
      ("fault", Test_fault.suite);
      ("fabric", Test_fabric.suite);
      ("regressions", Test_regressions.suite);
      ("campaign", Test_campaign.suite);
      ("fuzz", Test_fuzz.suite);
      ("mc", Test_mc.suite);
    ]
