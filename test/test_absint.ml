(* The abstract interpreter: interval-domain unit tests, the transfer
   functions on hand-written programs, the nested-acquire fixpoint and
   its widening, per-preset soundness, the failing demo scenarios, the
   derived footprint — and the cross-validation square: absint bounds
   must contain simulator-observed execution and dominate both the
   lint extraction and everything the model checker can provoke. *)

open Alcotest
open Emeralds

let ms = Model.Time.ms
let us = Model.Time.us

let scenario_of ?(name = "absint-test") progs =
  let arr = Array.of_list progs in
  let taskset =
    Model.Taskset.of_list
      (List.init (Array.length arr) (fun i ->
           Model.Task.make ~id:(i + 1)
             ~period:(ms (10 * (i + 1)))
             ~wcet:(ms 9) ()))
  in
  {
    Workload.Scenario.name;
    taskset;
    programs = (fun (t : Model.Task.t) -> arr.(t.id - 1));
    irq_sources = [];
    irq_signals = [];
    irq_writes = [];
  }

let itv = testable (Fmt.of_to_string Absint.Itv.to_string) Absint.Itv.equal

let diags_with check_name (r : Absint.Report.t) =
  List.filter (fun (d : Lint.Diag.t) -> d.check = check_name) r.diags

(* ------------------------------------------------------------------ *)
(* the interval domain *)

let test_itv () =
  let open Absint.Itv in
  check itv "add is pointwise" (range 3 7) (add (range 1 2) (range 2 5));
  check itv "Inf absorbs in add" (unbounded_from 4)
    (add (const 4) (unbounded_from 0));
  check itv "join is the hull" (range 1 9) (join (range 1 3) (range 4 9));
  check itv "join with Inf" (unbounded_from 2)
    (join (range 2 5) (unbounded_from 3));
  check itv "widen keeps stable bounds" (range 1 5)
    (widen (range 1 5) (range 1 5));
  check itv "widen sends a rising hi to Inf" (unbounded_from 1)
    (widen (range 1 5) (range 1 6));
  check itv "widen sends a falling lo to 0"
    { lo = 0; hi = Fin 5 }
    (widen (range 2 5) (range 1 5));
  check bool "finite dominates up to hi" true (dominates (range 0 10) 10);
  check bool "finite fails above hi" false (dominates (range 0 10) 11);
  check bool "Inf dominates everything" true
    (dominates (unbounded_from 0) max_int);
  check bool "const clamps below zero" true (equal (const (-5)) zero);
  check_raises "range rejects hi < lo"
    (Invalid_argument "Itv.range: hi < lo") (fun () -> ignore (range 5 4))

(* ------------------------------------------------------------------ *)
(* transfer functions on hand-written programs *)

let analyze_zero progs =
  Absint.Report.analyze ~cost:Sim.Cost.zero (scenario_of progs)

let test_pure_compute () =
  let open Program in
  let r = analyze_zero [ [ compute (us 300); compute (us 700) ] ] in
  let s = r.tasks.(0).summary in
  check itv "demand is the exact sum" (Absint.Itv.const (us 1000)) s.exec;
  check itv "no suspension" Absint.Itv.zero s.suspend;
  check int "no nesting" 0 s.nesting;
  check int "no kernel window" 0 s.atomic;
  (* under the m68040 model every kernel call adds its charge *)
  let c = Sim.Cost.m68040 in
  let sm = State_msg.create ~depth:2 ~words:4 in
  let r =
    Absint.Report.analyze ~cost:c
      (scenario_of [ [ state_read sm; compute (us 300) ] ])
  in
  let s = r.tasks.(0).summary in
  check itv "kernel charges are in the demand"
    (Absint.Itv.const
       (us 300 + c.syscall_entry + Sim.Cost.state_read c ~words:4))
    s.exec;
  check int "the call is the non-preemptible window"
    (c.syscall_entry + Sim.Cost.state_read c ~words:4)
    s.atomic

let test_suspension () =
  let open Program in
  let wq = Objects.waitq () in
  let r =
    analyze_zero
      [ [ delay (us 400); timed_wait wq (us 900); compute (us 100) ];
        [ signal wq ] ]
  in
  let s = r.tasks.(0).summary in
  check itv "delay + timeout bound the suspension"
    (Absint.Itv.range (us 400) (us 1300))
    s.suspend;
  check bool "demand stays bounded" true (Absint.Itv.is_bounded s.exec);
  (* an untimed wait has no static bound *)
  let r = analyze_zero [ [ wait wq; compute (us 100) ]; [ signal wq ] ] in
  check bool "untimed wait is unbounded" false
    (Absint.Itv.is_bounded r.tasks.(0).summary.suspend);
  (* ... and poisons the derived RTA demand for that task only *)
  let demand = Absint.Report.derived_demand r in
  check bool "rank 0 demand is None" true (demand.(0) = None);
  check bool "rank 1 demand is Some" true (demand.(1) <> None)

let test_holds_and_fixpoint () =
  let a = Objects.sem () and b = Objects.sem () in
  let open Program in
  let r =
    analyze_zero
      [
        [
          acquire a; compute (us 100); acquire b; release b; release a;
          compute (us 50);
        ];
        critical b (us 500);
      ]
  in
  let hold_of id =
    (List.find (fun (sb : Absint.Report.sem_bound) -> sb.sem_id = id) r.sems)
      .hold
  in
  (* the outer hold absorbs the inner acquire's worst-case wait: b can
     be held for 500us by the other task *)
  check itv "outer hold includes the inner acquire wait"
    (Absint.Itv.range (us 100) (us 600))
    (hold_of a.Types.sem_id);
  check itv "b's worst hold joins both tasks' sections"
    (Absint.Itv.range 0 (us 500))
    (hold_of b.Types.sem_id);
  check int "two simultaneous frames" 2 r.tasks.(0).summary.nesting;
  check int "no findings" 0 (List.length r.diags);
  (* acquire waits outside any section are excluded from suspension:
     they are the RTA blocking term, not self-suspension *)
  check itv "acquire wait not double-counted as suspension"
    Absint.Itv.zero r.tasks.(0).summary.suspend

let test_widening_on_cycle () =
  (* opposite-order nesting: the mutual hold/wait recursion has no
     finite fixpoint, so widening must push both holds to Inf — and
     the analysis must still terminate and stay error-free (lint and
     the model checker own the deadlock verdict) *)
  let r =
    Absint.Report.analyze ~cost:Sim.Cost.zero
      (Workload.Scenario.seeded_deadlock ())
  in
  List.iter
    (fun (sb : Absint.Report.sem_bound) ->
      check bool
        (Printf.sprintf "sem %d hold widened to Inf" sb.sem_id)
        false
        (Absint.Itv.is_bounded sb.hold))
    r.sems;
  check int "two unbounded-hold warnings" 2
    (List.length (diags_with "hold-unbounded" r));
  check int "but no errors" 0 (Absint.Report.errors r)

let test_unbounded_hold_warning () =
  let s = Objects.sem () and wq = Objects.waitq () in
  let open Program in
  let r =
    analyze_zero
      [ [ acquire s; wait wq; release s ]; [ signal wq ] ]
  in
  check bool "warning carries the blocking pc" true
    (List.exists
       (fun (d : Lint.Diag.t) -> d.pc = Some 1)
       (diags_with "hold-unbounded" r));
  check bool "the hold span is unbounded" false
    (Absint.Itv.is_bounded (List.hd r.sems).hold);
  check int "a warning, not an error" 0 (Absint.Report.errors r)

(* ------------------------------------------------------------------ *)
(* presets: clean analysis, domination over the exact lint extraction *)

let test_presets_clean () =
  List.iter
    (fun cost ->
      List.iter
        (fun (sc : Workload.Scenario.t) ->
          let r = Absint.Report.analyze ~cost sc in
          check int (sc.name ^ " has no analyze errors") 0
            (Absint.Report.errors r);
          Array.iter
            (fun (tb : Absint.Report.task_bound) ->
              match Absint.Itv.hi_int tb.summary.exec with
              | None -> fail (sc.name ^ ": demand must always be finite")
              | Some hi ->
                check bool
                  (Printf.sprintf "%s/%s declared wcet covers derived demand"
                     sc.name tb.task.Model.Task.name)
                  true
                  (tb.task.Model.Task.wcet >= hi))
            r.tasks;
          check bool (sc.name ^ " fits the 128 KB envelope") true
            (r.total_bytes <= snd Footprint.envelope))
        (Workload.Scenario.all ()))
    [ Sim.Cost.zero; Sim.Cost.m68040 ]

let test_holds_dominate_lint () =
  List.iter
    (fun (sc : Workload.Scenario.t) ->
      let r = Absint.Report.analyze sc in
      let ctx =
        Lint.Ctx.make ~irq_signals:sc.irq_signals ~irq_writes:sc.irq_writes
          ~taskset:sc.taskset ~programs:sc.programs ()
      in
      List.iter
        (fun (sem_id, ceiling, worst) ->
          match
            List.find_opt
              (fun (sb : Absint.Report.sem_bound) -> sb.sem_id = sem_id)
              r.sems
          with
          | None ->
            fail
              (Printf.sprintf "%s: lint sees sem %d but absint does not"
                 sc.name sem_id)
          | Some sb ->
            check bool
              (Printf.sprintf "%s sem %d: absint hold dominates lint CS"
                 sc.name sem_id)
              true
              (Absint.Itv.dominates sb.hold worst);
            check int
              (Printf.sprintf "%s sem %d: ceilings agree" sc.name sem_id)
              ceiling sb.ceiling)
        (Lint.Blocking_terms.per_sem ctx);
      (* under zero kernel cost the abstract blocking terms must
         dominate lint's exact ones rank by rank *)
      let rz = Absint.Report.analyze ~cost:Sim.Cost.zero sc in
      let abs_b = Absint.Report.blocking_terms rz in
      let lint_b = Lint.Blocking_terms.blocking_terms ctx in
      Array.iteri
        (fun i lb ->
          check bool
            (Printf.sprintf "%s B%d: absint >= lint" sc.name i)
            true
            (abs_b.(i) >= lb))
        lint_b)
    (Workload.Scenario.all ())

(* ------------------------------------------------------------------ *)
(* cross-validation: absint contains what the simulator observes *)

(* Per-job running time from the trace: CPU actually consumed between a
   job's release and its completion, accumulated across preemptions
   from the context-switch chain. *)
let observed_job_times entries =
  let running = ref None and last = ref 0 in
  let acc : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let jobs = ref [] in
  let credit now =
    match !running with
    | Some tid when Hashtbl.mem acc tid ->
      Hashtbl.replace acc tid (Hashtbl.find acc tid + (now - !last))
    | _ -> ()
  in
  List.iter
    (fun (st : Sim.Trace.stamped) ->
      match st.entry with
      | Sim.Trace.Job_release { tid; _ } -> Hashtbl.replace acc tid 0
      | Sim.Trace.Context_switch { to_tid; _ } ->
        credit st.at;
        running := to_tid;
        last := st.at
      | Sim.Trace.Job_complete { tid; _ } ->
        credit st.at;
        last := st.at;
        (match Hashtbl.find_opt acc tid with
        | Some t ->
          jobs := (tid, t) :: !jobs;
          Hashtbl.remove acc tid
        | None -> ())
      | _ -> ())
    entries;
  !jobs

let test_sim_containment () =
  List.iter
    (fun name ->
      let sc = Option.get (Workload.Scenario.make name) in
      let r = Absint.Report.analyze ~cost:Sim.Cost.zero sc in
      let rank_of_tid =
        let tasks = Model.Taskset.tasks sc.taskset in
        fun tid ->
          let rec find i =
            if i >= Array.length tasks then None
            else if tasks.(i).Model.Task.id = tid then Some i
            else find (i + 1)
          in
          find 0
      in
      let k =
        Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset:sc.taskset
          ~programs:sc.programs ()
      in
      Kernel.run k ~until:(ms 200);
      let jobs =
        observed_job_times (Sim.Trace.entries (Kernel.trace k))
      in
      check bool (name ^ ": some jobs completed") true (jobs <> []);
      List.iter
        (fun (tid, t) ->
          match rank_of_tid tid with
          | None -> ()
          | Some rank ->
            let exec = r.tasks.(rank).summary.exec in
            check bool
              (Printf.sprintf
                 "%s tau%d: observed job time %dns within %s" name tid t
                 (Absint.Itv.to_string exec))
              true
              (t >= exec.Absint.Itv.lo && Absint.Itv.dominates exec t))
        jobs)
    [ "table2"; "engine"; "voice"; "avionics" ]

(* ------------------------------------------------------------------ *)
(* cross-validation: absint dominates the model checker's view *)

let test_mc_domination () =
  List.iter
    (fun name ->
      let sc = Option.get (Workload.Scenario.make name) in
      let r = Absint.Report.analyze ~cost:Sim.Cost.zero sc in
      let m = Mc.Machine.of_scenario sc in
      (* (i) demand: the compiled model's per-task compute total is a
         concrete execution the abstract demand must contain *)
      Array.iter
        (fun (t : Mc.Machine.mtask) ->
          let total =
            Array.fold_left
              (fun acc i ->
                match i with Mc.Machine.ICompute w -> acc + w | _ -> acc)
              0 t.code
          in
          let exec = r.tasks.(t.idx).summary.exec in
          check bool
            (Printf.sprintf "%s %s: exec contains the compiled compute sum"
               name t.task_name)
            true
            (exec.Absint.Itv.lo <= total && Absint.Itv.dominates exec total))
        m.tasks)
    [ "engine"; "voice" ];
  (* (ii) responses: RTA fed with the absint blocking terms must bound
     every response the checker can provoke within its horizon *)
  let sc = Option.get (Workload.Scenario.make "engine") in
  let r = Absint.Report.analyze ~cost:Sim.Cost.zero sc in
  let blocking = Absint.Report.blocking_terms r in
  let m = Mc.Machine.of_scenario sc in
  let bounds =
    { Mc.Explorer.horizon = ms 40; max_states = 20_000; max_depth = 2_000 }
  in
  let res = Mc.Explorer.check ~por:false ~props:[] ~bounds m in
  let rows =
    Array.map
      (fun (t : Model.Task.t) -> (t.period, t.deadline, t.wcet))
      (Model.Taskset.tasks sc.taskset)
  in
  Array.iteri
    (fun i _ ->
      match Analysis.Rta.response_time ~blocking ~tasks:rows i with
      | None -> ()
      | Some bound ->
        check bool
          (Printf.sprintf
             "engine rank %d: MC response %dns within RTA+absint %dns" i
             res.max_response.(i) bound)
          true
          (res.max_response.(i) <= bound))
    rows

(* ------------------------------------------------------------------ *)
(* peak-live block bounds *)

let test_peak_live () =
  let open Program in
  let p = Objects.pool ~block_bytes:32 ~capacity:4 () in
  let r =
    analyze_zero
      [
        [ alloc p; alloc p; compute (us 10); free p; free p; alloc p; free p ];
        [ alloc p; compute (us 5); free p ];
      ]
  in
  (* the lower end is 0: any grant may be denied by a concurrently
     exhausted pool, so only the upper end is a guarantee *)
  check itv "tau1 peaks at two live blocks" (Absint.Itv.range 0 2)
    (List.assoc p.Types.pool_id r.tasks.(0).summary.peak_live);
  check itv "tau2 peaks at one" (Absint.Itv.range 0 1)
    (List.assoc p.Types.pool_id r.tasks.(1).summary.peak_live);
  (match r.pools with
  | [ pb ] ->
    check int "capacity derived" 4 pb.capacity;
    check int "block bytes derived" 32 pb.block_bytes;
    (* pool-wide bound: preemption can park every task at its peak *)
    check itv "pool bound sums the per-task peaks" (Absint.Itv.range 0 3)
      pb.peak
  | l -> failf "expected one pool bound, got %d" (List.length l));
  check int "a covered pool raises no diagnostic" 0
    (List.length (diags_with "pool-sizing" r));
  (* kernel charges: each alloc/free costs syscall entry + pool admin *)
  let c = Sim.Cost.m68040 in
  let r2 =
    Absint.Report.analyze ~cost:c
      (scenario_of [ [ alloc p; compute (us 100); free p ] ])
  in
  check itv "alloc and free are charged"
    (Absint.Itv.const (us 100 + (2 * (c.syscall_entry + c.pool_admin))))
    r2.tasks.(0).summary.exec;
  (* a per-task peak above capacity is a certain denial: error *)
  let tiny = Objects.pool ~block_bytes:16 ~capacity:1 () in
  let r3 =
    analyze_zero [ [ alloc tiny; alloc tiny; free tiny; free tiny ] ]
  in
  check bool "oversubscribed pool is an error" true
    (List.exists
       (fun (d : Lint.Diag.t) -> d.severity = Lint.Diag.Error)
       (diags_with "pool-sizing" r3));
  (* summed peaks above capacity across preempting tasks: warning *)
  let shared = Objects.pool ~block_bytes:16 ~capacity:2 () in
  let two = [ alloc shared; alloc shared; free shared; free shared ] in
  let r4 = analyze_zero [ two; two ] in
  check bool "combined oversubscription warns" true
    (List.exists
       (fun (d : Lint.Diag.t) -> d.severity = Lint.Diag.Warning)
       (diags_with "pool-sizing" r4))

(* ------------------------------------------------------------------ *)
(* the failing demos *)

let test_under_declared_demo () =
  let r =
    Absint.Report.analyze (Workload.Scenario.under_declared_wcet ())
  in
  check bool "analyze fails" true (Absint.Report.errors r > 0);
  check int "exactly the liar is flagged" 1
    (List.length (diags_with "wcet-declaration" r));
  (match diags_with "wcet-declaration" r with
  | [ d ] -> check (option int) "on task 2" (Some 2) d.task
  | _ -> fail "expected one finding")

let test_over_budget_demo () =
  let sc = Workload.Scenario.over_budget () in
  let r = Absint.Report.analyze sc in
  check bool "analyze fails" true (Absint.Report.errors r > 0);
  check int "with a budget error" 1 (List.length (diags_with "budget" r));
  check bool "derived footprint really is over 128 KB" true
    (r.total_bytes > snd Footprint.envelope);
  (* a budget large enough to hold it turns the error into the
     envelope note *)
  let r =
    Absint.Report.analyze ~budget_bytes:1_000_000
      (Workload.Scenario.over_budget ())
  in
  check int "no error under a 1 MB budget" 0 (Absint.Report.errors r);
  check int "but the envelope note fires" 1
    (List.length (diags_with "envelope" r))

(* ------------------------------------------------------------------ *)
(* derived footprint *)

let test_footprint_derivation () =
  let sc = Option.get (Workload.Scenario.make "engine") in
  let r = Absint.Report.analyze sc in
  let c = r.config in
  check int "threads = taskset size" 12 c.Footprint.threads;
  check int "one semaphore" 1 c.Footprint.semaphores;
  check int "one wait queue" 1 c.Footprint.condvars;
  check (list (pair int int)) "no mailboxes" [] c.Footprint.mailboxes;
  check (list (pair int int)) "the crank state message" [ (3, 2) ]
    c.Footprint.state_messages;
  check int "release clock only" 1 c.Footprint.timers;
  check int "stack sized for one nesting level"
    (Absint.Memory.stack_base_bytes + Absint.Memory.stack_frame_bytes)
    c.Footprint.stack_bytes_per_thread;
  (* voice routes frames through a mailbox: capacity and the largest
     payload actually sent must both be derived *)
  let r = Absint.Report.analyze (Option.get (Workload.Scenario.make "voice")) in
  check (list (pair int int)) "voice tx queue" [ (8, 3) ]
    r.config.Footprint.mailboxes;
  (* nesting depth drives the stack: two held locks = two frames *)
  let a = Objects.sem () and b = Objects.sem () in
  let open Program in
  let r =
    analyze_zero
      [ [ acquire a; acquire b; compute (us 10); release b; release a ] ]
  in
  check int "two frames of stack"
    (Absint.Memory.stack_base_bytes + (2 * Absint.Memory.stack_frame_bytes))
    r.config.Footprint.stack_bytes_per_thread;
  (* a task that sleeps needs a timer beside the release clock *)
  let r = analyze_zero [ [ delay (us 100) ]; [ compute (us 10) ] ] in
  check int "release clock + one sleeper" 2 r.config.Footprint.timers

let suite =
  [
    test_case "interval domain" `Quick test_itv;
    test_case "pure compute and kernel charges" `Quick test_pure_compute;
    test_case "suspension bounds" `Quick test_suspension;
    test_case "holds and the nested-acquire fixpoint" `Quick
      test_holds_and_fixpoint;
    test_case "widening on a cyclic lock order" `Quick test_widening_on_cycle;
    test_case "unbounded hold warning" `Quick test_unbounded_hold_warning;
    test_case "presets analyze clean" `Quick test_presets_clean;
    test_case "absint dominates the lint extraction" `Quick
      test_holds_dominate_lint;
    test_case "absint contains simulated execution" `Quick
      test_sim_containment;
    test_case "absint dominates the model checker" `Quick test_mc_domination;
    test_case "peak-live block bounds" `Quick test_peak_live;
    test_case "under-declared WCET demo fails" `Quick test_under_declared_demo;
    test_case "over-budget demo fails" `Quick test_over_budget_demo;
    test_case "footprint derivation" `Quick test_footprint_derivation;
  ]
