(* Semaphore protocol (§6): mutual exclusion, priority inheritance,
   the context-switch elimination, the approach queue, and the paper's
   safety arguments (completion times unchanged, case-B fix). *)

open Alcotest
open Emeralds

let ms = Model.Time.ms
let us = Model.Time.us

let task ?phase id p c = Model.Task.make ?phase ~id ~period:(ms p) ~wcet:(ms c) ()

let run_k ?(cost = Sim.Cost.zero) ?(spec = Sched.Edf) ?(optimized_pi = true)
    ~programs ts ~until =
  let k =
    Kernel.create ~cost ~spec ~taskset:ts ~programs ~optimized_pi ()
  in
  Kernel.run k ~until;
  k

let stat k tid =
  List.find (fun (s : Kernel.task_stats) -> s.tid = tid) (Kernel.stats k)

let entries_of k = Sim.Trace.entries (Kernel.trace k)

(* ------------------------------------------------------------------ *)
(* Mutual exclusion *)

(* Two tasks hammer one lock; trace lock/unlock alternation proves
   mutual exclusion. *)
let test_mutual_exclusion kind () =
  let sem = Objects.sem ~kind () in
  let ts = Model.Taskset.of_list [ task 1 10 3; task 2 15 5 ] in
  let programs (t : Model.Task.t) =
    Program.(critical sem (Model.Time.mul t.wcet 1))
  in
  let k = run_k ~programs ts ~until:(ms 300) in
  check int "no misses" 0 (Kernel.total_misses k);
  let holder = ref None in
  let scan (s : Sim.Trace.stamped) =
    match s.entry with
    | Sem_acquired { tid; _ } -> (
      match !holder with
      | None -> holder := Some tid
      | Some h -> failf "tau%d acquired while tau%d holds" tid h)
    | Sem_released { tid; _ } -> (
      match !holder with
      | Some h when h = tid -> holder := None
      | Some h -> failf "tau%d released but tau%d holds" tid h
      | None -> failf "tau%d released an un-held semaphore" tid)
    | _ -> ()
  in
  List.iter scan (entries_of k);
  (* the horizon may cut a job mid-critical-section, so the lock being
     held at the end is fine; the alternation scan above is the
     mutual-exclusion property *)
  ignore !holder

(* ------------------------------------------------------------------ *)
(* The Figure 6 scenario, both schemes, zero cost *)

let scenario ~kind =
  let sem = Objects.sem ~kind () in
  let event = Objects.waitq () in
  (* T2 high (id 1), Tx filler (id 2), T1 holder low (id 3) *)
  let ts =
    Model.Taskset.of_list
      [
        task 1 40 3;
        task ~phase:(ms 1) 2 60 12;
        task 3 100 8;
      ]
  in
  let programs (t : Model.Task.t) =
    let open Program in
    match t.id with
    | 1 -> [ wait event; acquire sem; compute (ms 1); release sem ]
    | 2 -> [ compute (ms 10) ]
    | 3 -> [ acquire sem; compute (ms 5); release sem; compute (ms 2) ]
    | _ -> assert false
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset:ts ~programs
      ~optimized_pi:(kind = Types.Emeralds) ()
  in
  Kernel.at k ~at:(ms 2) (fun () -> Kernel.signal_waitq k event);
  Kernel.run k ~until:(ms 39);
  k

let test_completion_times_equal () =
  (* §6.2.2: the new scheme only swaps execution chunks between T1 and
     T2 — with zero kernel costs, completion times are identical. *)
  let std = scenario ~kind:Types.Standard in
  let eme = scenario ~kind:Types.Emeralds in
  List.iter
    (fun tid ->
      check int
        (Printf.sprintf "tau%d same response" tid)
        (stat std tid).max_response (stat eme tid).max_response)
    [ 1; 2; 3 ]

let test_context_switch_saved () =
  let std = scenario ~kind:Types.Standard in
  let eme = scenario ~kind:Types.Emeralds in
  check int "exactly one switch saved"
    (Sim.Trace.context_switches (Kernel.trace std) - 1)
    (Sim.Trace.context_switches (Kernel.trace eme))

(* §6.2.1 hints across structured control flow: the Figure 6 scenario
   with T2's acquire wrapped in a branch.  When every arm first
   acquires the same semaphore, the hint survives flattening and the
   EMERALDS scheme still saves the context switch; when the arms
   disagree, the hint must degrade to None and the optimization stands
   down — on the very same executed path (the branch oracle forces the
   first arm in both schemes), so the switch-count difference isolates
   the hint. *)
let branch_scenario ~agree ~kind =
  let sem = Objects.sem ~kind () in
  let other = Objects.sem ~kind () in
  let event = Objects.waitq () in
  let ts =
    Model.Taskset.of_list
      [ task 1 40 3; task ~phase:(ms 1) 2 60 12; task 3 100 8 ]
  in
  let waiter_prog =
    let open Program in
    let arm s c = [ acquire s; compute (ms c); release s ] in
    [
      wait event;
      (if agree then if_input (arm sem 1) (arm sem 2)
       else if_input (arm sem 1) (arm other 1));
    ]
  in
  let programs (t : Model.Task.t) =
    let open Program in
    match t.id with
    | 1 -> waiter_prog
    | 2 -> [ compute (ms 10) ]
    | 3 -> [ acquire sem; compute (ms 5); release sem; compute (ms 2) ]
    | _ -> assert false
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset:ts ~programs
      ~optimized_pi:(kind = Types.Emeralds) ()
  in
  Kernel.set_branch_oracle k (Some (fun ~tid:_ ~job:_ ~idx:_ -> Some true));
  Kernel.at k ~at:(ms 2) (fun () -> Kernel.signal_waitq k event);
  Kernel.run k ~until:(ms 39);
  (k, waiter_prog, sem)

let test_hints_across_branches () =
  (* statically: the hint at the wait looks through the branch *)
  let _, agree_prog, sem = branch_scenario ~agree:true ~kind:Types.Emeralds in
  let hints = Program.derive_hints (Program.flatten agree_prog) in
  (match hints.(0) with
  | Some s -> check int "agreeing arms keep the hint" sem.Types.sem_id s.sem_id
  | None -> fail "hint lost across agreeing branch arms");
  let _, disagree_prog, _ = branch_scenario ~agree:false ~kind:Types.Emeralds in
  let hints = Program.derive_hints (Program.flatten disagree_prog) in
  check bool "disagreeing arms degrade the hint to None" true
    (hints.(0) = None);
  (* dynamically: the kernel's switch counts confirm both verdicts *)
  let switches (k, _, _) = Sim.Trace.context_switches (Kernel.trace k) in
  check int "agreeing hint still saves the switch"
    (switches (branch_scenario ~agree:true ~kind:Types.Standard) - 1)
    (switches (branch_scenario ~agree:true ~kind:Types.Emeralds));
  check int "degraded hint saves nothing"
    (switches (branch_scenario ~agree:false ~kind:Types.Standard))
    (switches (branch_scenario ~agree:false ~kind:Types.Emeralds))

let test_waiter_never_runs_between () =
  (* In the EMERALDS scheme T2 must not execute between event E and
     T1's release: no switch *to* T2 may appear in that window. *)
  let eme = scenario ~kind:Types.Emeralds in
  let release_time = ref None in
  List.iter
    (fun (s : Sim.Trace.stamped) ->
      match s.entry with
      | Sem_released { tid = 3; _ } when !release_time = None ->
        release_time := Some s.at
      | _ -> ())
    (entries_of eme);
  let release_at = Option.get !release_time in
  List.iter
    (fun (s : Sim.Trace.stamped) ->
      match s.entry with
      | Context_switch { to_tid = Some 1; _ } when s.at >= ms 2 ->
        (* from event E onward, T2 may run only once T1 released *)
        check bool "switch to T2 only after the release" true
          (s.at >= release_at)
      | _ -> ())
    (entries_of eme)

let test_priority_inheritance_traced () =
  let std = scenario ~kind:Types.Standard in
  let has_inherit =
    List.exists
      (fun (s : Sim.Trace.stamped) ->
        match s.entry with
        | Priority_inherit { holder = 3; from_tid = 1 } -> true
        | _ -> false)
      (entries_of std)
  in
  check bool "T1 inherited T2's priority" true has_inherit

(* ------------------------------------------------------------------ *)
(* Priority inversion bound *)

let test_pi_bounds_inversion () =
  (* Classic Mars-Pathfinder shape: low L holds the lock, medium M
     hogs the CPU, high H needs the lock.  With PI, H completes before
     M's long job can interpose. *)
  let sem = Objects.sem ~kind:Types.Emeralds () in
  let ts =
    Model.Taskset.of_list
      [
        task ~phase:(ms 3) 1 100 2; (* H *)
        task ~phase:(ms 1) 2 200 50; (* M *)
        task 3 400 10; (* L *)
      ]
  in
  let programs (t : Model.Task.t) =
    let open Program in
    match t.id with
    | 1 -> critical sem (ms 2)
    | 2 -> [ compute (ms 50) ]
    | 3 -> critical sem (ms 10)
    | _ -> assert false
  in
  let k = run_k ~programs ts ~until:(ms 120) in
  (* Without PI, H would wait for all of M's 50ms.  With PI, H waits
     only for L's remaining critical section. *)
  check bool "H's response bounded by L's critical section" true
    ((stat k 1).max_response <= ms 12);
  check int "H met its deadline" 0 (stat k 1).misses

(* ------------------------------------------------------------------ *)
(* Approach queue (§6.3.1) *)

let test_case_b_fix () =
  (* T2 completes its wait while S is free, but a higher thread T1
     locks S before T2 reaches acquire: T2 must be blocked rather than
     allowed to run toward a doomed acquire. *)
  let sem = Objects.sem ~kind:Types.Emeralds () in
  let event = Objects.waitq () in
  let ts =
    Model.Taskset.of_list
      [ task 1 50 6; task ~phase:(ms 4) 2 30 4 ]
    (* tau2 (id 2, period 30) outranks tau1 *)
  in
  let programs (t : Model.Task.t) =
    let open Program in
    match t.id with
    | 1 ->
      (* completes the hinted wait at 2ms (signal pending),
         then computes toward its acquire *)
      [ compute (ms 1); wait event; compute (ms 5); acquire sem;
        compute (ms 2); release sem ]
    | 2 -> acquire sem :: compute (ms 1) :: delay (ms 5) :: [ compute (ms 1); release sem ]
    | _ -> assert false
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset:ts ~programs ()
  in
  Kernel.at k ~at:(ms 1) (fun () -> Kernel.signal_waitq k event);
  (* Probe while tau2 holds S and sleeps (t = 7ms): tau1 must be
     parked in the approach queue, not computing toward acquire. *)
  let probe = ref None in
  Kernel.at k ~at:(ms 7) (fun () ->
      let t1 = Kernel.tcb k ~tid:1 in
      probe := Some t1.Types.state);
  Kernel.run k ~until:(ms 40);
  (match !probe with
  | Some (Types.Blocked "approach") -> ()
  | Some s ->
    failf "tau1 should be approach-blocked, got %s"
      (match s with
      | Types.Ready -> "Ready"
      | Types.Running -> "Running"
      | Types.Dormant -> "Dormant"
      | Types.Blocked r -> "Blocked:" ^ r)
  | None -> fail "probe did not run");
  check int "no misses" 0 (Kernel.total_misses k)

let test_release_wakes_approachers () =
  (* Same setup; after tau2 releases, tau1 finishes its job. *)
  let sem = Objects.sem ~kind:Types.Emeralds () in
  let event = Objects.waitq () in
  let ts = Model.Taskset.of_list [ task 1 100 6; task ~phase:(ms 4) 2 50 4 ] in
  let programs (t : Model.Task.t) =
    let open Program in
    match t.id with
    | 1 -> [ compute (ms 1); wait event; compute (ms 5); acquire sem;
             compute (ms 2); release sem ]
    | 2 -> acquire sem :: compute (ms 1) :: delay (ms 5) :: [ compute (ms 1); release sem ]
    | _ -> assert false
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset:ts ~programs ()
  in
  Kernel.at k ~at:(ms 1) (fun () -> Kernel.signal_waitq k event);
  Kernel.run k ~until:(ms 100);
  check int "tau1 completed its job" 1 (stat k 1).jobs_completed;
  check int "tau2 completed too" 2 (stat k 2).jobs_completed;
  check int "nobody missed" 0 (Kernel.total_misses k)

(* ------------------------------------------------------------------ *)
(* Blocking-for-internal-event safety (§6.3.2, Figure 10) *)

let test_holder_blocks_for_signal () =
  (* T1 locks S then waits for Ts's signal; T2 (hinted) stays blocked;
     when Ts signals, T1 finishes and T2 proceeds — nobody deadlocks. *)
  let sem = Objects.sem ~kind:Types.Emeralds () in
  let gate = Objects.waitq () in
  let wake = Objects.waitq () in
  let ts =
    Model.Taskset.of_list
      [ task 1 100 2; task ~phase:(ms 1) 2 100 3; task ~phase:(ms 2) 3 100 1 ]
  in
  let programs (t : Model.Task.t) =
    let open Program in
    match t.id with
    | 1 -> [ wait gate; acquire sem; compute (ms 1); release sem ]
    | 2 -> [ acquire sem; wait wake; compute (ms 1); release sem ]
    | 3 -> [ compute (ms 1); signal wake ]
    | _ -> assert false
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset:ts ~programs ()
  in
  Kernel.at k ~at:(ms 1) (fun () -> Kernel.signal_waitq k gate);
  Kernel.run k ~until:(ms 100);
  List.iter
    (fun tid ->
      check int (Printf.sprintf "tau%d done" tid) 1 (stat k tid).jobs_completed)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Error handling and counting *)

let test_release_unheld_rejected () =
  let sem = Objects.sem () in
  let ts = Model.Taskset.of_list [ task 1 10 1 ] in
  let programs _ = [ Program.release sem ] in
  check bool "releasing an un-held semaphore is a kernel error" true
    (try
       ignore (run_k ~programs ts ~until:(ms 5));
       false
     with Invalid_argument _ -> true)

let test_queue_wakeup_order () =
  (* Three waiters of different priorities: the grant order follows
     priority, not FIFO. *)
  let sem = Objects.sem ~kind:Types.Standard () in
  let ts =
    Model.Taskset.of_list
      [
        task ~phase:(ms 3) 1 100 1;
        task ~phase:(ms 2) 2 200 1;
        task ~phase:(ms 1) 3 300 1;
        task 4 400 10;
      ]
  in
  let programs (t : Model.Task.t) =
    let open Program in
    if t.id = 4 then critical sem (ms 6) else critical sem (ms 1)
  in
  let k = run_k ~spec:Sched.Rm ~programs ts ~until:(ms 50) in
  let grants =
    List.filter_map
      (fun (s : Sim.Trace.stamped) ->
        match s.entry with
        | Sem_acquired { tid; _ } -> Some tid
        | _ -> None)
      (entries_of k)
  in
  (* tau4 locks first; despite tau3 arriving first, tau1 is granted
     next, then tau2, then tau3 *)
  check (list int) "priority-ordered grants" [ 4; 1; 2; 3 ] grants

let test_counting_via_chain () =
  (* Nested critical sections: a holder of A blocking on B inherits
     through the chain. *)
  let a = Objects.sem ~kind:Types.Emeralds () in
  let b = Objects.sem ~kind:Types.Emeralds () in
  let ts =
    Model.Taskset.of_list
      [ task ~phase:(ms 4) 1 100 2; task ~phase:(ms 2) 2 100 4; task 3 100 6 ]
  in
  let programs (t : Model.Task.t) =
    let open Program in
    match t.id with
    | 1 -> critical a (ms 1)
    | 2 -> [ acquire a; acquire b; compute (ms 1); release b; release a ]
    | 3 -> critical b (ms 4)
    | _ -> assert false
  in
  let k = run_k ~spec:Sched.Rm ~programs ts ~until:(ms 100) in
  check int "no misses under chained PI" 0 (Kernel.total_misses k);
  List.iter
    (fun tid ->
      check int (Printf.sprintf "tau%d done" tid) 1 (stat k tid).jobs_completed)
    [ 1; 2; 3 ]

(* Generalizing §6.2.2: for random semaphore programs under a
   zero-cost kernel, the EMERALDS scheme must not change any task's
   deadline outcome — it only swaps execution chunks around.  The
   atoms deliberately exclude wait-queue signal/wait: the §6.2.2
   safety argument covers semaphore blocking only, and chunk
   reordering *is* observable through signal/wait ordering (a chunk
   moved past another task's wait flips whether a signal finds a
   waiter or is lost), so the equivalence is genuinely false for
   waitq programs — exhaustive search over seeds 1..100000, n ∈ 2..5
   finds counterexamples with waitq atoms (e.g. seed 1664, n = 5) and
   none without. *)
let qtest ?(count = 60) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let scheme_gen_atom s1 =
  QCheck2.Gen.(
    frequency
      [
        (5, (let+ n = int_range 50 800 in [ Program.compute (us n) ]));
        (3, (let+ n = int_range 100 500 in Program.critical s1 (us n)));
        (1, (let+ n = int_range 50 300 in [ Program.delay (us (500 + n)) ]));
      ])

let scheme_outcome kind ~n ~seed =
  let rng = Util.Rng.create ~seed in
  let s1 = Objects.sem ~kind () in
  let taskset =
    Model.Taskset.of_list
      (List.init n (fun i ->
           let period = Util.Rng.choose rng [| ms 10; ms 20; ms 25; ms 40 |] in
           Model.Task.make ~id:(i + 1) ~period ~wcet:(ms 2) ()))
  in
  let gen = QCheck2.Gen.generate1 ~rand:(Random.State.make [| seed |]) in
  let programs =
    Array.init n (fun _ ->
        gen
          QCheck2.Gen.(
            let* len = int_range 1 6 in
            let+ atoms = list_repeat len (scheme_gen_atom s1) in
            List.concat atoms))
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset
      ~programs:(fun t -> programs.(t.id - 1))
      ~optimized_pi:(kind = Types.Emeralds) ()
  in
  Kernel.run k ~until:(ms 200);
  List.map
    (fun (s : Kernel.task_stats) -> (s.tid, s.jobs_completed, s.misses))
    (Kernel.stats k)

let prop_schemes_equivalent_outcomes =
  qtest "both schemes yield identical deadline outcomes (zero cost)"
    QCheck2.Gen.(pair (int_range 2 5) (int_range 1 100_000))
    (fun (n, seed) ->
      scheme_outcome Types.Standard ~n ~seed
      = scheme_outcome Types.Emeralds ~n ~seed)

let suite =
  [
    prop_schemes_equivalent_outcomes;
    test_case "mutual exclusion (standard)" `Quick
      (test_mutual_exclusion Types.Standard);
    test_case "mutual exclusion (EMERALDS)" `Quick
      (test_mutual_exclusion Types.Emeralds);
    test_case "completion times unchanged (§6.2.2)" `Quick
      test_completion_times_equal;
    test_case "context switch saved" `Quick test_context_switch_saved;
    test_case "hints across branch arms (§6.2.1)" `Quick
      test_hints_across_branches;
    test_case "waiter held back until release" `Quick
      test_waiter_never_runs_between;
    test_case "priority inheritance traced" `Quick
      test_priority_inheritance_traced;
    test_case "PI bounds priority inversion" `Quick test_pi_bounds_inversion;
    test_case "case-B fix (approach queue)" `Quick test_case_b_fix;
    test_case "release wakes approachers" `Quick test_release_wakes_approachers;
    test_case "holder blocking for a signal (Fig 10)" `Quick
      test_holder_blocks_for_signal;
    test_case "release of un-held semaphore" `Quick test_release_unheld_rejected;
    test_case "priority-ordered grants" `Quick test_queue_wakeup_order;
    test_case "chained inheritance" `Quick test_counting_via_chain;
  ]

let _ = us
