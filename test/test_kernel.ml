(* Kernel execution semantics: job lifecycle, preemption, overheads,
   deadline handling, timers, interrupts — everything except the
   semaphore/IPC protocols, which get their own suites. *)

open Alcotest
open Emeralds

let qtest ?(count = 60) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let ms = Model.Time.ms
let us = Model.Time.us

let taskset l = Model.Taskset.of_list l
let task ?phase ?deadline id p c =
  Model.Task.make ?phase ?deadline ~id ~period:(ms p) ~wcet:(ms c) ()

let run ?programs ?(cost = Sim.Cost.zero) ?(spec = Sched.Edf) ?stop_on_miss ts
    ~until =
  let k = Kernel.create ?programs ?stop_on_miss ~cost ~spec ~taskset:ts () in
  Kernel.run k ~until;
  k

let stat k tid =
  List.find (fun (s : Kernel.task_stats) -> s.tid = tid) (Kernel.stats k)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let test_single_task () =
  let k = run (taskset [ task 1 10 2 ]) ~until:(ms 100) in
  let s = stat k 1 in
  check int "ten jobs" 10 s.jobs_completed;
  check int "no misses" 0 s.misses;
  check int "response = wcet" (ms 2) s.max_response;
  check int "busy time" (ms 20) (Sim.Trace.busy_time (Kernel.trace k))

let test_phase_offsets () =
  let ts = taskset [ task ~phase:(ms 5) 1 10 1 ] in
  let k = run ts ~until:(ms 10) in
  let entries = Sim.Trace.entries (Kernel.trace k) in
  let release_at =
    List.find_map
      (fun (s : Sim.Trace.stamped) ->
        match s.entry with Job_release _ -> Some s.at | _ -> None)
      entries
  in
  check (option int) "first release at the phase" (Some (ms 5)) release_at

let test_preemption () =
  (* tau1 preempts tau2; tau2's first job finishes at 8ms (see §5.2's
     style of analysis: R2 = 4 + 2*2). *)
  let k = run ~spec:Sched.Rm (taskset [ task 1 5 2; task 2 7 4 ]) ~until:(ms 8) in
  let s2 = stat k 2 in
  check int "tau2 completed once" 1 s2.jobs_completed;
  check int "tau2 response" (ms 8) s2.max_response;
  check bool "a preemption happened" true
    (Sim.Trace.preemptions (Kernel.trace k) >= 1)

let test_deadline_miss_detection () =
  let k = run ~spec:Sched.Rm (taskset [ task 1 5 2; task 2 7 4 ]) ~until:(ms 8) in
  check int "tau2 misses its 7ms deadline" 1 (stat k 2).misses

let test_stop_on_miss () =
  let k =
    run ~spec:Sched.Rm ~stop_on_miss:true
      (taskset [ task 1 5 2; task 2 7 4 ])
      ~until:(ms 100)
  in
  check bool "stopped early" true (Kernel.stopped k);
  check int "exactly one miss recorded" 1 (Kernel.total_misses k)

(* Two tasks whose first jobs both blow the same deadline instant: the
   miss probes fire at the same virtual time, in release (FIFO) order.
   [stop_on_miss] freezes the kernel inside the first probe, so only
   that miss is recorded, and [first_miss] names the earlier-released
   task. *)
let test_simultaneous_miss_tie () =
  let ts = taskset [ task ~deadline:(ms 2) 1 10 1; task ~deadline:(ms 2) 2 10 1 ] in
  let programs _ = [ Program.compute (ms 5) ] in
  let stopped = run ~programs ~spec:Sched.Rm ~stop_on_miss:true ts ~until:(ms 10) in
  let tr = Kernel.trace stopped in
  check int "only the first same-instant miss recorded" 1
    (Sim.Trace.deadline_misses tr);
  (match Sim.Trace.first_miss tr with
  | Some { at; entry = Sim.Trace.Deadline_miss { tid; _ } } ->
    check int "probe fires just past the deadline" (ms 2 + 1) at;
    check int "FIFO tie goes to the earlier release" 1 tid
  | Some _ | None -> fail "first_miss missing");
  (* without the stop, both same-instant misses count and first_miss
     still names the earlier release *)
  let free = run ~programs ~spec:Sched.Rm ts ~until:(ms 10) in
  let tr = Kernel.trace free in
  check bool "both misses recorded without the stop" true
    (Sim.Trace.deadline_misses tr >= 2);
  match Sim.Trace.first_miss tr with
  | Some { at; entry = Sim.Trace.Deadline_miss { tid; _ } } ->
    check int "same probe instant" (ms 2 + 1) at;
    check int "same FIFO winner" 1 tid
  | Some _ | None -> fail "first_miss missing"

let test_overrun_backlog () =
  (* A single task whose job takes longer than its period: releases
     queue up and are served back-to-back, each missing. *)
  let programs (t : Model.Task.t) = [ Program.compute (Model.Time.mul t.period 2) ] in
  let ts = taskset [ task 1 10 5 ] in
  let k = run ~programs ts ~until:(ms 100) in
  let s = stat k 1 in
  check bool "some jobs completed" true (s.jobs_completed >= 4);
  check bool "misses recorded" true (s.misses >= 4)

let test_idle_gaps () =
  let k = run (taskset [ task 1 100 1 ]) ~until:(ms 1000) in
  check int "busy only 10ms" (ms 10) (Sim.Trace.busy_time (Kernel.trace k))

(* ------------------------------------------------------------------ *)
(* Table 2 under every scheduler (zero-cost: pure policy) *)

let test_table2_policies () =
  let expectations =
    [
      (Sched.Rm, true);
      (Sched.Rm_heap, true);
      (Sched.Edf, false);
      (Sched.Csd [ 5 ], false);
      (Sched.Csd [ 2; 3 ], false);
    ]
  in
  List.iter
    (fun (spec, should_miss) ->
      let k = run ~spec Workload.Presets.table2 ~until:(ms 2520) in
      let missed = Kernel.total_misses k > 0 in
      check bool (Sched.spec_name spec) should_miss missed;
      if should_miss then begin
        (* specifically tau5, at its first 8ms deadline (Figure 2) *)
        match Sim.Trace.first_miss (Kernel.trace k) with
        | Some { at; entry = Deadline_miss { tid; _ } } ->
          check int "tau5 is the troublesome task" 5 tid;
          (* the miss is recorded 1ns past the deadline boundary *)
          check int "at 8ms" (ms 8 + 1) at
        | _ -> fail "expected a first miss"
      end)
    expectations

(* ------------------------------------------------------------------ *)
(* Overheads *)

let test_overhead_charging () =
  let ts = taskset [ task 1 10 2; task 2 20 4 ] in
  let k = run ~cost:Sim.Cost.m68040 ts ~until:(ms 200) in
  let tr = Kernel.trace k in
  check bool "overhead accrued" true (Sim.Trace.overhead_total tr > 0);
  let categories = List.map fst (Sim.Trace.overhead_by_category tr) in
  List.iter
    (fun c -> check bool ("category " ^ c) true (List.mem c categories))
    [ "sched.block"; "sched.select"; "sched.unblock"; "switch" ];
  (* busy time unchanged by overhead: all jobs still complete *)
  check int "all work done" (ms (40 + 40)) (Sim.Trace.busy_time tr)

let test_overhead_delays_completion () =
  let ts = taskset [ task 1 10 2 ] in
  let free = run ~cost:Sim.Cost.zero ts ~until:(ms 10) in
  let charged = run ~cost:Sim.Cost.m68040 ts ~until:(ms 10) in
  let r0 = (stat free 1).max_response in
  let r1 = (stat charged 1).max_response in
  check bool "overhead lengthens response" true (r1 > r0)

let test_zero_cost_idle_cpu_conservation () =
  (* busy + idle = horizon when overheads are zero *)
  let ts = taskset [ task 1 10 3; task 2 20 5 ] in
  let k = run ts ~until:(ms 200) in
  check int "busy = demand" (ms ((3 * 20) + (5 * 10)))
    (Sim.Trace.busy_time (Kernel.trace k))

(* ------------------------------------------------------------------ *)
(* Timers, delays, interrupts *)

let test_delay_instruction () =
  let ts = taskset [ task 1 100 1 ] in
  let programs _ = Program.[ compute (ms 1); delay (ms 7); compute (ms 2) ] in
  let k = run ~programs ts ~until:(ms 100) in
  let s = stat k 1 in
  check int "job completes" 1 s.jobs_completed;
  check int "response includes the sleep" (ms 10) s.max_response

let test_interrupt_wakes_task () =
  let event = Objects.waitq () in
  let ts = taskset [ task 1 100 1 ] in
  let programs _ = Program.[ wait event; compute (ms 1) ] in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset:ts ~programs ()
  in
  Kernel.register_irq k ~irq:5 ~signals:[ event ]
    ~handler:(fun () -> Kernel.signal_waitq k event)
    ();
  Kernel.raise_irq_at k ~at:(ms 30) ~irq:5;
  Kernel.run k ~until:(ms 100);
  let s = stat k 1 in
  check int "one job" 1 s.jobs_completed;
  check int "finished right after the irq" (ms 31) s.max_response;
  let irqs =
    List.filter
      (fun (s : Sim.Trace.stamped) ->
        match s.entry with Interrupt _ -> true | _ -> false)
      (Sim.Trace.entries (Kernel.trace k))
  in
  check int "irq traced" 1 (List.length irqs)

let test_duplicate_irq_rejected () =
  let ts = taskset [ task 1 100 1 ] in
  let k = Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset:ts () in
  Kernel.register_irq k ~irq:1 ~handler:(fun () -> ()) ();
  check bool "duplicate rejected" true
    (try
       Kernel.register_irq k ~irq:1 ~handler:(fun () -> ()) ();
       false
     with Invalid_argument _ -> true)

let test_irq_preempts_computation () =
  (* interrupt entry cost delays the running thread *)
  let ts = taskset [ task 1 100 10 ] in
  let k =
    Kernel.create ~cost:Sim.Cost.m68040 ~spec:Sched.Edf ~taskset:ts ()
  in
  Kernel.register_irq k ~irq:2 ~handler:(fun () -> ()) ();
  Kernel.raise_irq_at k ~at:(ms 3) ~irq:2;
  Kernel.run k ~until:(ms 100);
  let with_irq = (stat k 1).max_response in
  let k2 = run ~cost:Sim.Cost.m68040 ts ~until:(ms 100) in
  check bool "irq lengthened the response" true
    (with_irq > (stat k2 1).max_response)

(* ------------------------------------------------------------------ *)
(* Property: EDF optimality and RTA agreement on random workloads *)

(* Periods drawn from divisors of 40ms keep hyperperiods tiny. *)
let gen_small_taskset =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* periods = list_repeat n (oneofl [ 4; 5; 8; 10; 20; 40 ]) in
    let* permille = list_repeat n (int_range 10 400) in
    let tasks =
      List.mapi
        (fun i (p, m) ->
          let wcet = max 1 (ms p * m / 1000) in
          Model.Task.make ~id:(i + 1) ~period:(ms p) ~wcet ())
        (List.combine periods permille)
    in
    return (Model.Taskset.of_list tasks))

let prop_schedule_is_hyperperiodic =
  qtest ~count:40 "zero-cost synchronous schedules repeat each hyperperiod"
    gen_small_taskset (fun ts ->
      (* Strictly less than 1: at full utilization the processor never
         idles, so the task completing exactly at the hyperperiod
         boundary carries over as the incumbent and the EDF list scan
         can break the boundary's deadline ties differently from t=0 —
         the schedule is then cyclic with some multiple of the
         hyperperiod, not the hyperperiod itself.  An idle instant
         before each boundary resets the queue state and makes the
         classic repetition theorem apply verbatim. *)
      QCheck2.assume (Model.Taskset.utilization ts < 1.0);
      let hyper = Model.Taskset.hyperperiod ts in
      QCheck2.assume (hyper <= ms 40);
      let k = run ~spec:Sched.Edf ts ~until:(Model.Time.mul hyper 3) in
      let tr = Kernel.trace k in
      Array.for_all
        (fun (t : Model.Task.t) ->
          let rs = Array.of_list (Sim.Trace.responses tr ~tid:t.id) in
          let jobs_per_hyper = hyper / t.period in
          let ok = ref true in
          Array.iteri
            (fun j r ->
              if j + jobs_per_hyper < Array.length rs then
                ok := !ok && rs.(j + jobs_per_hyper) = r)
            rs;
          !ok)
        (Model.Taskset.tasks ts))

let prop_edf_optimal =
  qtest "U <= 1 -> EDF misses nothing (zero overhead)" gen_small_taskset
    (fun ts ->
      QCheck2.assume (Model.Taskset.utilization ts <= 1.0);
      let k = run ~spec:Sched.Edf ts ~until:(ms 80) in
      Kernel.total_misses k = 0)

let prop_rta_agrees_with_simulation =
  qtest "RTA-feasible -> RM simulation misses nothing" gen_small_taskset
    (fun ts ->
      let rows =
        Array.map
          (fun (t : Model.Task.t) -> (t.period, t.deadline, t.wcet))
          (Model.Taskset.tasks ts)
      in
      QCheck2.assume (Analysis.Rta.feasible rows);
      let k = run ~spec:Sched.Rm ts ~until:(ms 80) in
      Kernel.total_misses k = 0)

let prop_rta_tight =
  qtest "RTA-infeasible -> RM simulation misses (implicit deadlines)"
    gen_small_taskset (fun ts ->
      let rows =
        Array.map
          (fun (t : Model.Task.t) -> (t.period, t.deadline, t.wcet))
          (Model.Taskset.tasks ts)
      in
      QCheck2.assume (not (Analysis.Rta.feasible rows));
      (* exact test + synchronous release = worst case occurs in the
         first busy period *)
      let k = run ~spec:Sched.Rm ts ~until:(ms 80) in
      Kernel.total_misses k > 0)

let prop_analysis_feasible_implies_sim_clean =
  qtest "overhead-aware CSD analysis -> simulation meets deadlines"
    gen_small_taskset (fun ts ->
      (* The analysis covers the §5.1 scheduling-op model (at the 1.5x
         blocking-call factor); zero the costs it does not model so the
         implication is exact. *)
      let cost =
        { Sim.Cost.m68040 with context_switch = 0; syscall_entry = 0 }
      in
      let spec = Sched.Csd [ 2 ] in
      QCheck2.assume (Model.Taskset.size ts >= 3);
      QCheck2.assume (Analysis.Feasibility.feasible ~cost ~spec ts);
      let k = run ~cost ~spec ts ~until:(ms 80) in
      Kernel.total_misses k = 0)

let suite =
  [
    test_case "single task lifecycle" `Quick test_single_task;
    test_case "phase offsets" `Quick test_phase_offsets;
    test_case "preemption accounting" `Quick test_preemption;
    test_case "deadline miss detection" `Quick test_deadline_miss_detection;
    test_case "stop on miss" `Quick test_stop_on_miss;
    test_case "simultaneous miss tie" `Quick test_simultaneous_miss_tie;
    test_case "overrun backlog" `Quick test_overrun_backlog;
    test_case "idle gaps" `Quick test_idle_gaps;
    test_case "Table 2 policies" `Quick test_table2_policies;
    test_case "overhead charging" `Quick test_overhead_charging;
    test_case "overhead delays completion" `Quick test_overhead_delays_completion;
    test_case "cpu conservation" `Quick test_zero_cost_idle_cpu_conservation;
    test_case "delay instruction" `Quick test_delay_instruction;
    test_case "interrupt wakes task" `Quick test_interrupt_wakes_task;
    test_case "duplicate irq rejected" `Quick test_duplicate_irq_rejected;
    test_case "irq delays computation" `Quick test_irq_preempts_computation;
    prop_schedule_is_hyperperiodic;
    prop_edf_optimal;
    prop_rta_agrees_with_simulation;
    prop_rta_tight;
    prop_analysis_feasible_implies_sim_clean;
  ]
