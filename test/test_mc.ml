(* The bounded model checker: the lint <-> MC <-> RTA cross-validation
   triangle, counterexample replay determinism, the state-message tear
   bound, and the kernel-vs-checker differential on deterministic
   schedules. *)

let ms = Model.Time.ms
let us = Model.Time.us

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lint_errors (s : Workload.Scenario.t) =
  let ctx =
    Lint.Ctx.make ~irq_signals:s.irq_signals ~irq_writes:s.irq_writes
      ~taskset:s.taskset ~programs:s.programs ()
  in
  Lint.Report.run ctx

let has_error_check name diags =
  List.exists
    (fun (d : Lint.Diag.t) ->
      d.severity = Lint.Diag.Error && d.check = name)
    diags

(* --- seeded deadlock: lint flags it, the checker witnesses it ------- *)

let seeded_deadlock_witnessed () =
  let s = Workload.Scenario.seeded_deadlock () in
  check "lint flags the seeded lock-order cycle" true
    (has_error_check "deadlock" (lint_errors s));
  let m = Mc.Machine.of_scenario s in
  let bounds = Mc.Explorer.default_bounds m in
  let props = [ Mc.Props.deadlock ] in
  let r = Mc.Explorer.check ~props ~bounds m in
  match r.verdict with
  | `Ok -> Alcotest.fail "checker missed the seeded deadlock"
  | `Violation cex ->
    check "violated property is deadlock" true (cex.prop = "deadlock");
    (* the cycle is reachable on the deterministic schedule: both
       tasks' ranks are unique and there are no arrival windows *)
    check_int "witness needs no nondeterministic choices" 0
      (List.length cex.choices);
    check "deadlock strikes at 5ms" true (cex.at = ms 5);
    let trace = Mc.Counterexample.replay m ~props cex in
    check "replay trace mentions both semaphore blocks" true
      (List.length
         (List.filter
            (fun (st : Sim.Trace.stamped) ->
              match st.entry with Sim.Trace.Sem_blocked _ -> true | _ -> false)
            (Sim.Trace.entries trace))
      = 2)

(* --- presets: lint-clean and deadlock-free within bounds ------------ *)

let presets_agree () =
  List.iter
    (fun (s : Workload.Scenario.t) ->
      check_int
        (Printf.sprintf "%s is lint-clean" s.name)
        0
        (Lint.Diag.errors (lint_errors s));
      let m = Mc.Machine.of_scenario s in
      let bounds =
        {
          Mc.Explorer.horizon = min m.hyperperiod (ms 100);
          max_states = 30_000;
          max_depth = 2_000;
        }
      in
      let props =
        [ Mc.Props.deadlock; Mc.Props.pi; Mc.Props.invariants; Mc.Props.tear ]
      in
      let r = Mc.Explorer.check ~props ~bounds m in
      (match r.verdict with
      | `Ok -> ()
      | `Violation cex ->
        Alcotest.fail
          (Printf.sprintf "%s: %s" s.name
             (Mc.Counterexample.render m ~props cex)));
      check
        (Printf.sprintf "%s explored some states" s.name)
        true (r.expansions > 0 && r.jobs > 0))
    (Workload.Scenario.all ())

(* --- partial-order reduction: same verdicts, fewer states ----------- *)

let por_sound_on_ties () =
  (* table2 under EDF has genuine dispatch ties between pure-compute
     tasks (equal absolute deadlines), which is exactly what the
     reduction merges *)
  let s = Option.get (Workload.Scenario.make "table2") in
  let m = Mc.Machine.of_scenario ~sched:Mc.Machine.Edf s in
  let bounds =
    { Mc.Explorer.horizon = ms 50; max_states = 50_000; max_depth = 5_000 }
  in
  let props = [ Mc.Props.deadlock; Mc.Props.invariants ] in
  let with_por = Mc.Explorer.check ~por:true ~props ~bounds m in
  let without = Mc.Explorer.check ~por:false ~props ~bounds m in
  check "reduced run is clean" true (with_por.verdict = `Ok);
  check "unreduced run is clean" true (without.verdict = `Ok);
  check "reduction actually pruned tie choices" true
    (with_por.por_skipped > 0);
  check "reduction explored no more states than full run" true
    (with_por.expansions <= without.expansions)

(* --- RTA cross-check: observed responses within analytical bounds --- *)

let rows_of (ts : Model.Taskset.t) =
  Array.map
    (fun (t : Model.Task.t) -> (t.period, t.deadline, t.wcet))
    (Model.Taskset.tasks ts)

let rta_dominates_mc () =
  (* table2: pure computation, fixed priority, deterministic — the
     checker observes the exact critical-instant responses and RTA
     must bound every one of them *)
  let s = Option.get (Workload.Scenario.make "table2") in
  let m = Mc.Machine.of_scenario s in
  let bounds =
    { Mc.Explorer.horizon = ms 200; max_states = 50_000; max_depth = 5_000 }
  in
  let r = Mc.Explorer.check ~por:false ~props:[] ~bounds m in
  check "table2 exploration complete" true (not r.truncated);
  let rows = rows_of s.taskset in
  Array.iteri
    (fun i _ ->
      match Analysis.Rta.response_time ~tasks:rows i with
      | None -> ()
      | Some bound ->
        if r.max_response.(i) > bound then
          Alcotest.fail
            (Printf.sprintf
               "table2 rank %d: observed response %dns exceeds RTA bound %dns"
               i r.max_response.(i) bound))
    rows;
  (* the highest-priority task is never preempted: its observed
     response must be exactly its WCET *)
  check_int "rank 0 response = wcet" m.tasks.(0).wcet r.max_response.(0);
  (* engine: semaphores and a nondeterministic crank IRQ; the blocking
     terms extracted by the static verifier feed RTA, and the bound
     must dominate everything the checker can provoke within the
     horizon *)
  let s = Option.get (Workload.Scenario.make "engine") in
  let ctx =
    Lint.Ctx.make ~irq_signals:s.irq_signals ~irq_writes:s.irq_writes
      ~taskset:s.taskset ~programs:s.programs ()
  in
  let blocking = Lint.Blocking_terms.blocking_terms ctx in
  let m = Mc.Machine.of_scenario s in
  let bounds =
    { Mc.Explorer.horizon = ms 40; max_states = 20_000; max_depth = 2_000 }
  in
  let r = Mc.Explorer.check ~por:false ~props:[] ~bounds m in
  let rows = rows_of s.taskset in
  Array.iteri
    (fun i _ ->
      match Analysis.Rta.response_time ~blocking ~tasks:rows i with
      | None -> ()
      | Some bound ->
        if r.max_response.(i) > bound then
          Alcotest.fail
            (Printf.sprintf
               "engine rank %d: observed response %dns exceeds RTA bound %dns \
                (blocking %dns)"
               i r.max_response.(i) bound blocking.(i)))
    rows;
  check "engine saw jobs complete" true (r.jobs > 0)

(* --- the tear bound -------------------------------------------------- *)

(* One reader at top priority with a 1 ms copy span; an interrupt
   writer with a 300 us minimum inter-arrival.  Up to 3 writes can
   complete inside one copy, so depth 3 (tolerating 1) must tear and
   depth 6 = ceil(1000/300) + 2 (the paper's bound) must not. *)
let tear_scenario ~depth =
  let sm = Emeralds.State_msg.create ~depth ~words:4 in
  let taskset =
    Model.Taskset.of_list
      [
        Model.Task.make ~id:1 ~name:"reader" ~period:(ms 10) ~wcet:(ms 2) ();
      ]
  in
  let programs (_ : Model.Task.t) =
    [ Emeralds.Program.state_read sm; Emeralds.Program.compute (us 200) ]
  in
  Workload.Scenario.
    {
      name = Printf.sprintf "tear-depth-%d" depth;
      taskset;
      programs;
      irq_sources =
        [
          {
            irq = 1;
            min_interarrival = us 300;
            max_interarrival = us 500;
            signals = [];
            writes = [ sm ];
          };
        ];
      irq_signals = [];
      irq_writes = [ sm ];
    }

let tear_bound () =
  let props = [ Mc.Props.tear ] in
  let bounds m =
    { Mc.Explorer.horizon = min m.Mc.Machine.hyperperiod (ms 2);
      max_states = 20_000;
      max_depth = 1_000;
    }
  in
  (* depth 3 with a 1 ms copy: torn *)
  let m = Mc.Machine.of_scenario ~read_span:(ms 1) (tear_scenario ~depth:3) in
  let r = Mc.Explorer.check ~props ~bounds:(bounds m) m in
  (match r.verdict with
  | `Ok -> Alcotest.fail "depth 3 must admit a torn read"
  | `Violation cex ->
    check "violation is a tear" true (cex.prop = "tear");
    check "tear witness needs IRQ timing choices" true
      (List.length cex.choices > 0);
    (* the witness must replay to the same violation, twice *)
    let t1 = Mc.Counterexample.replay m ~props cex in
    let t2 = Mc.Counterexample.replay m ~props cex in
    check_int "replay is deterministic"
      (List.length (Sim.Trace.entries t1))
      (List.length (Sim.Trace.entries t2)));
  (* the paper's depth bound: ceil(read/write) + 2 = 6 is safe *)
  let m = Mc.Machine.of_scenario ~read_span:(ms 1) (tear_scenario ~depth:6) in
  let r = Mc.Explorer.check ~props ~bounds:(bounds m) m in
  check "paper-depth buffer is tear-free" true (r.verdict = `Ok);
  check "tear-free verdict is not a truncation artifact" true
    (not r.truncated);
  (* atomic reads (span 0) cannot tear at any depth *)
  let m = Mc.Machine.of_scenario (tear_scenario ~depth:2) in
  let r = Mc.Explorer.check ~props ~bounds:(bounds m) m in
  check "atomic reads never tear" true (r.verdict = `Ok)

(* --- sporadic arrivals ---------------------------------------------- *)

let sporadic_explored () =
  let sem = Emeralds.Objects.sem () in
  let taskset =
    Model.Taskset.of_list
      [
        Model.Task.make ~id:1 ~name:"ctl" ~period:(ms 10) ~wcet:(ms 2) ();
        Model.Task.make ~id:2 ~name:"burst" ~period:(ms 20) ~wcet:(ms 3) ();
      ]
  in
  let programs (t : Model.Task.t) =
    let open Emeralds.Program in
    if t.id = 1 then compute (us 500) :: critical sem (us 800)
    else critical sem (ms 2) @ [ compute (us 300) ]
  in
  let s =
    Workload.Scenario.
      {
        name = "sporadic-demo";
        taskset;
        programs;
        irq_sources = [];
        irq_signals = [];
        irq_writes = [];
      }
  in
  let m =
    Mc.Machine.of_scenario ~sporadic:[ (2, ms 5, ms 9) ] s
  in
  let bounds =
    { Mc.Explorer.horizon = ms 30; max_states = 20_000; max_depth = 1_000 }
  in
  let props = [ Mc.Props.deadlock; Mc.Props.pi; Mc.Props.invariants ] in
  let r = Mc.Explorer.check ~props ~bounds m in
  check "sporadic exploration is clean" true (r.verdict = `Ok);
  (* silence, earliest and latest arrivals all fork: more than one
     deterministic segment must have been expanded *)
  check "sporadic windows actually branch" true (r.expansions > 3)

(* --- kernel vs checker on deterministic schedules ------------------- *)

let kernel_differential () =
  let s = Option.get (Workload.Scenario.make "table2") in
  let horizon = ms 100 in
  let k =
    Emeralds.Kernel.create ~cost:Sim.Cost.zero ~spec:Emeralds.Sched.Rm
      ~taskset:s.taskset ~programs:s.programs ()
  in
  Emeralds.Kernel.run k ~until:horizon;
  let m = Mc.Machine.of_scenario s in
  let bounds =
    { Mc.Explorer.horizon = horizon; max_states = 50_000; max_depth = 5_000 }
  in
  let r = Mc.Explorer.check ~por:false ~props:[] ~bounds m in
  List.iter
    (fun (st : Emeralds.Kernel.task_stats) ->
      match Mc.Machine.task_of_tid m st.tid with
      | None -> Alcotest.fail "unknown tid in kernel stats"
      | Some mt ->
        check_int
          (Printf.sprintf "task %d worst response: kernel = checker" st.tid)
          st.max_response
          r.max_response.(mt.idx))
    (Emeralds.Kernel.stats k)

let snapshot_determinism () =
  let mk () =
    let s = Option.get (Workload.Scenario.make "engine") in
    Emeralds.Kernel.create ~cost:Sim.Cost.zero ~spec:Emeralds.Sched.Rm
      ~taskset:s.taskset ~programs:s.programs ()
  in
  let k1 = mk () and k2 = mk () in
  for _ = 1 to 400 do
    ignore (Emeralds.Kernel.step k1);
    ignore (Emeralds.Kernel.step k2)
  done;
  let s1 = Emeralds.Kernel.Snapshot.capture k1 in
  let s2 = Emeralds.Kernel.Snapshot.capture k2 in
  check "identical kernels stepped in lockstep snapshot equal" true
    (Emeralds.Kernel.Snapshot.equal s1 s2);
  check "equal snapshots hash equal" true
    (Emeralds.Kernel.Snapshot.hash s1 = Emeralds.Kernel.Snapshot.hash s2);
  match Emeralds.Kernel.Snapshot.thread s1 ~tid:1 with
  | None -> Alcotest.fail "snapshot lost task 1"
  | Some (mode, _, _, _, _) ->
    check "task 1 mode is a known word" true
      (List.mem mode [ "ready"; "running"; "dormant" ]
      || String.length mode >= 8 && String.sub mode 0 8 = "blocked:")

(* --- branch forking: the checker explores both arms ----------------- *)

(* A violation hiding behind one branch outcome: the taken arm
   over-commits a one-block pool, the untaken arm is innocuous.  The
   checker must fork on the branch, pin the guilty outcome in the
   witness's choice list, and replay must steer the kernel down that
   exact path — visible as [Branch] trace entries matching the
   choices. *)
let branch_fork_and_replay () =
  let pool = Emeralds.Objects.pool ~block_bytes:16 ~capacity:1 () in
  let ts =
    Model.Taskset.of_list
      [ Model.Task.make ~id:1 ~period:(ms 10) ~wcet:(ms 3) () ]
  in
  let programs (_ : Model.Task.t) =
    let open Emeralds.Program in
    [
      compute (us 100);
      if_input
        [ alloc pool; alloc pool; compute (us 100); free pool; free pool ]
        [ compute (us 200) ];
    ]
  in
  let s =
    {
      Workload.Scenario.name = "branch-overcommit";
      taskset = ts;
      programs;
      irq_sources = [];
      irq_signals = [];
      irq_writes = [];
    }
  in
  let m = Mc.Machine.of_scenario s in
  let bounds =
    { Mc.Explorer.horizon = ms 10; max_states = 1_000; max_depth = 500 }
  in
  let props = [ Mc.Props.mem ] in
  let r = Mc.Explorer.check ~props ~bounds m in
  match r.verdict with
  | `Ok -> Alcotest.fail "checker missed the over-commit behind the branch"
  | `Violation cex ->
    check "mem property violated" true (cex.prop = "mem");
    let chosen =
      List.filter_map
        (function
          | Mc.Step.Take_branch { taken; _ } -> Some taken | _ -> None)
        cex.choices
    in
    check "witness pins exactly the guilty branch outcome" true
      (chosen = [ true ]);
    let trace = Mc.Counterexample.replay m ~props cex in
    let recorded =
      List.filter_map
        (fun (st : Sim.Trace.stamped) ->
          match st.entry with
          | Sim.Trace.Branch { tid; idx; taken; _ } -> Some (tid, idx, taken)
          | _ -> None)
        (Sim.Trace.entries trace)
    in
    check "replay reproduces the exact taken path" true
      (recorded = [ (1, 0, true) ])

let suite =
  [
    Alcotest.test_case "seeded deadlock: lint and MC agree" `Quick
      seeded_deadlock_witnessed;
    Alcotest.test_case "presets: lint-clean and MC-clean" `Quick presets_agree;
    Alcotest.test_case "POR keeps verdicts, prunes ties" `Quick
      por_sound_on_ties;
    Alcotest.test_case "RTA bounds dominate MC responses" `Quick
      rta_dominates_mc;
    Alcotest.test_case "state-message tear bound" `Quick tear_bound;
    Alcotest.test_case "sporadic windows explored" `Quick sporadic_explored;
    Alcotest.test_case "kernel = checker on deterministic runs" `Quick
      kernel_differential;
    Alcotest.test_case "kernel snapshots are deterministic" `Quick
      snapshot_determinism;
    Alcotest.test_case "branch fork and counterexample replay" `Quick
      branch_fork_and_replay;
  ]
