(* Kernel fuzzing: random workloads with random (balanced) thread
   programs under every scheduler and both cost models.  Asserts that
   no kernel invariant ever breaks and that the execution trace is
   well-formed — deadline misses and blocked-forever threads are
   legitimate outcomes; crashes, corrupted queues, phantom context
   switches and unbalanced semaphores are not. *)

open Emeralds

let qtest ?(count = 120) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let ms = Model.Time.ms
let us = Model.Time.us

(* --- random programs ------------------------------------------------ *)

(* Shared objects: two mutexes (nested only in s1 -> s2 order, so
   self-deadlock is impossible and cross-deadlock merely blocks), one
   wait queue, one mailbox, one state message. *)
type objects = {
  s1 : Types.sem;
  s2 : Types.sem;
  wq : Types.waitq;
  mb : Types.mailbox;
  sm : State_msg.t;
}

let fresh_objects kind =
  {
    s1 = Objects.sem ~kind ();
    s2 = Objects.sem ~kind ();
    wq = Objects.waitq ();
    mb = Objects.mailbox ~capacity:2 ();
    sm = State_msg.create ~depth:3 ~words:2;
  }

(* One program atom.  [allow_s1] prevents re-acquiring the outer mutex
   inside its own critical section (self-deadlock is a program bug,
   not a kernel behaviour we want to fuzz). *)
let gen_atom objs ~allow_s1 =
  QCheck2.Gen.(
    let mutex = if allow_s1 then objs.s1 else objs.s2 in
    frequency
      [
        ( 6,
          let+ n = int_range 50 800 in
          [ Program.compute (us n) ] );
        ( 2,
          let+ n = int_range 100 500 in
          Program.critical mutex (us n) );
        ( 1,
          let+ n = int_range 50 300 in
          [ Program.delay (us (500 + n)) ] );
        (1, return [ Program.signal objs.wq ]);
        (1, return [ Program.wait objs.wq ]);
        ( 1,
          let+ n = int_range 100 2_000 in
          [ Program.timed_wait objs.wq (us n) ] );
        (1, return [ Program.send objs.mb [| 1; 2 |] ]);
        (1, return [ Program.recv objs.mb ]);
        (1, return [ Program.state_write objs.sm [| 3; 4 |] ]);
        (1, return [ Program.state_read objs.sm ]);
      ])

(* A nested section: hold s1 across inner atoms that may block, take
   s2, signal, ... — the §6.3.2 blocking-while-holding patterns. *)
let gen_nested objs =
  QCheck2.Gen.(
    let* inner = gen_atom objs ~allow_s1:false in
    let+ n = int_range 50 200 in
    (Program.acquire objs.s1 :: inner)
    @ [ Program.compute (us n); Program.release objs.s1 ])

let gen_program objs =
  QCheck2.Gen.(
    let* len = int_range 1 5 in
    let+ atoms =
      list_repeat len
        (frequency [ (4, gen_atom objs ~allow_s1:true); (1, gen_nested objs) ])
    in
    List.concat atoms)

let gen_case =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let* kind = oneofl [ Types.Standard; Types.Emeralds ] in
    let* spec_idx = int_bound 6 in
    let* costly = bool in
    let* tick = oneofl [ None; Some (ms 1); Some (us 700) ] in
    let* seed = int_range 1 10_000 in
    return (n, kind, spec_idx, costly, tick, seed))

(* Every scheduler the kernel ships: the classic three plus CSD with
   one, two and three DP queues (CSD-2/3/4) and the all-DP degenerate
   split.  Partitions shrink to fit small task counts. *)
let spec_of idx n =
  let spec =
    match idx with
    | 0 -> Sched.Edf
    | 1 -> Sched.Rm
    | 2 -> Sched.Rm_heap
    | 3 -> Sched.Csd [ max 1 (n / 2) ] (* CSD-2 *)
    | 4 -> Sched.Csd [ 1; 1 ] (* CSD-3 *)
    | 5 -> if n >= 3 then Sched.Csd [ 1; 1; 1 ] else Sched.Csd [ 1; 1 ]
      (* CSD-4 *)
    | _ -> Sched.Csd [ n ] (* every task in one DP queue *)
  in
  Sched.validate_partition spec ~n_tasks:n;
  spec

(* --- trace well-formedness ------------------------------------------ *)

let well_formed_trace entries horizon =
  let last_to = ref None in
  let holders : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let ok = ref true in
  let fail_if b = if b then ok := false in
  List.iter
    (fun (s : Sim.Trace.stamped) ->
      fail_if (s.at < 0 || s.at > horizon + ms 10);
      match s.entry with
      | Context_switch { from_tid; to_tid } ->
        (* switches chain: you can only switch away from the thread
           that last received the CPU *)
        fail_if (from_tid <> !last_to);
        last_to := to_tid
      | Sem_acquired { tid; sem } ->
        fail_if (Hashtbl.mem holders sem);
        Hashtbl.replace holders sem tid
      | Sem_released { tid; sem } -> (
        match Hashtbl.find_opt holders sem with
        | Some h ->
          fail_if (h <> tid);
          Hashtbl.remove holders sem
        | None -> ok := false)
      | _ -> ())
    entries;
  !ok

(* --- the property ---------------------------------------------------- *)

(* Build and run one random case.  Everything — task set, programs,
   environment events — derives deterministically from the case tuple,
   so calling this twice (fresh kernel objects each time) replays the
   same simulation; [make_enforcement], fed the generated programs,
   lets the differential and enforcement properties install budgets on
   an otherwise identical kernel. *)
let run_one ?make_enforcement (n, kind, spec_idx, costly, tick, seed) =
  let rng = Util.Rng.create ~seed in
  let objs = fresh_objects kind in
  let taskset =
    Model.Taskset.of_list
      (List.init n (fun i ->
           let period =
             Util.Rng.choose rng [| ms 10; ms 20; ms 25; ms 40; ms 50 |]
           in
           Model.Task.make ~id:(i + 1) ~period ~wcet:(ms 2) ()))
  in
  (* derive each task's program from the deterministic rng *)
  let gen = QCheck2.Gen.generate1 ~rand:(Random.State.make [| seed |]) in
  let programs = Array.init n (fun _ -> gen (gen_program objs)) in
  let k =
    Kernel.create
      ~cost:(if costly then Sim.Cost.m68040 else Sim.Cost.zero)
      ~spec:(spec_of spec_idx n) ~taskset ?tick
      ~programs:(fun task -> programs.(task.id - 1))
      ~optimized_pi:(kind = Types.Emeralds) ()
  in
  (match make_enforcement with
  | None -> ()
  | Some f -> Kernel.set_enforcement k (Some (f programs)));
  let horizon = ms 150 in
  (* random environment: an interrupt source that signals the shared
     wait queue and publishes the state message, raised at random
     instants; stray wait-queue signals from kernel context; sporadic
     job triggers on a random task *)
  Kernel.register_irq k ~irq:1 ~signals:[ objs.wq ] ~writes:[ objs.sm ]
    ~handler:(fun () ->
      Kernel.signal_waitq k objs.wq;
      State_msg.write objs.sm [| 7; 8 |])
    ();
  for _ = 1 to Util.Rng.int rng 6 do
    Kernel.raise_irq_at k ~at:(us (Util.Rng.int rng 150_000)) ~irq:1
  done;
  for _ = 1 to Util.Rng.int rng 4 do
    Kernel.at k
      ~at:(us (Util.Rng.int rng 150_000))
      (fun () -> Kernel.signal_waitq k objs.wq)
  done;
  let sporadic_tid = 1 + Util.Rng.int rng n in
  for _ = 1 to Util.Rng.int rng 3 do
    Kernel.trigger_job_at k ~at:(us (Util.Rng.int rng 150_000)) ~tid:sporadic_tid
  done;
  (* interleave structural checks with execution *)
  let rec probes t =
    if t < horizon then begin
      Kernel.at k ~at:t (fun () -> Kernel.check_invariants k);
      probes (t + ms 13)
    end
  in
  probes (ms 1);
  Kernel.run k ~until:horizon;
  Kernel.check_invariants k;
  (k, horizon)

let run_case case =
  let k, horizon = run_one case in
  let tr = Kernel.trace k in
  Sim.Trace.busy_time tr <= horizon
  && well_formed_trace (Sim.Trace.entries tr) horizon

let prop_kernel_fuzz =
  qtest "random programs never break kernel invariants" gen_case run_case

let prop_busy_conservation =
  qtest ~count:60 "zero-cost: busy time equals completed work"
    QCheck2.Gen.(int_range 1 5_000)
    (fun seed ->
      let rng = Util.Rng.create ~seed in
      let n = 1 + Util.Rng.int rng 4 in
      let taskset =
        Model.Taskset.of_list
          (List.init n (fun i ->
               Model.Task.make ~id:(i + 1)
                 ~period:(Util.Rng.choose rng [| ms 10; ms 20; ms 40 |])
                 ~wcet:(us (500 + Util.Rng.int rng 2000))
                 ()))
      in
      let k =
        Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset ()
      in
      let horizon = ms 200 in
      Kernel.run k ~until:horizon;
      (* with zero overhead, banked busy time = sum of completed job
         work + possibly one partial job per task *)
      let completed_work =
        List.fold_left
          (fun acc (s : Kernel.task_stats) ->
            let tcb = Kernel.tcb k ~tid:s.tid in
            acc + (s.jobs_completed * tcb.Types.task.wcet))
          0 (Kernel.stats k)
      in
      let busy = Sim.Trace.busy_time (Kernel.trace k) in
      busy >= completed_work && busy <= completed_work + (n * ms 3))

(* --- lint cross-checks ----------------------------------------------- *)

(* A kernel-level deadlock: a cycle of threads each blocked in [acquire]
   on a semaphore held by the next.  (A thread parked on a wait queue
   that never gets signalled is starvation, not deadlock — random
   programs do that legitimately.) *)
let sem_wait_cycle k ~n =
  let next tid =
    match (Kernel.tcb k ~tid).Types.waiting_on with
    | Some s ->
      Option.map (fun (h : Types.tcb) -> h.Types.tid) s.Types.holder
    | None -> None
  in
  let rec chase seen tid =
    List.mem tid seen
    || match next tid with None -> false | Some t -> chase (tid :: seen) t
  in
  List.exists (fun tid -> chase [] tid) (List.init n (fun i -> i + 1))

(* Programs the static verifier passes must run deadlock-free: lint
   errors are exactly the class of bugs that turn into stuck kernels,
   so error-free random programs must simulate without a semaphore
   wait cycle and keep every kernel invariant. *)
let run_lint_clean (n, kind, spec_idx, costly, tick, seed) =
  let rng = Util.Rng.create ~seed in
  let objs = fresh_objects kind in
  let taskset =
    Model.Taskset.of_list
      (List.init n (fun i ->
           let period =
             Util.Rng.choose rng [| ms 10; ms 20; ms 25; ms 40; ms 50 |]
           in
           Model.Task.make ~id:(i + 1) ~period ~wcet:(ms 2) ()))
  in
  let gen = QCheck2.Gen.generate1 ~rand:(Random.State.make [| seed |]) in
  let programs =
    Array.of_list (List.init n (fun _ -> gen (gen_program objs)))
  in
  let programs_fn (task : Model.Task.t) = programs.(task.id - 1) in
  let ctx = Lint.Ctx.make ~taskset ~programs:programs_fn () in
  if Lint.Diag.errors (Lint.Report.run ctx) > 0 then true
  else begin
    let k =
      Kernel.create
        ~cost:(if costly then Sim.Cost.m68040 else Sim.Cost.zero)
        ~spec:(spec_of spec_idx n) ~taskset ?tick ~programs:programs_fn
        ~optimized_pi:(kind = Types.Emeralds) ()
    in
    Kernel.run k ~until:(ms 150);
    Kernel.check_invariants k;
    not (sem_wait_cycle k ~n)
  end

let prop_lint_clean_runs =
  qtest "lint-clean programs never deadlock the kernel" gen_case
    run_lint_clean

(* And the flip side: splice an opposite-order nesting into otherwise
   random programs and the deadlock check must fire. *)
let prop_injected_cycle =
  qtest ~count:80 "injected lock-order cycle is flagged"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let objs = fresh_objects Types.Emeralds in
      let gen = QCheck2.Gen.generate1 ~rand:(Random.State.make [| seed |]) in
      let filler () = gen (gen_atom objs ~allow_s1:false) in
      let nest x y =
        [
          Program.acquire x; Program.compute (us 80); Program.acquire y;
          Program.release y; Program.release x;
        ]
      in
      let p1 = filler () @ nest objs.s1 objs.s2 @ filler () in
      let p2 = filler () @ nest objs.s2 objs.s1 @ filler () in
      let taskset =
        Model.Taskset.of_list
          [
            Model.Task.make ~id:1 ~period:(ms 10) ~wcet:(ms 2) ();
            Model.Task.make ~id:2 ~period:(ms 20) ~wcet:(ms 2) ();
          ]
      in
      let ctx =
        Lint.Ctx.make ~taskset
          ~programs:(fun t -> if t.id = 1 then p1 else p2)
          ()
      in
      List.exists
        (fun (d : Lint.Diag.t) ->
          d.severity = Lint.Diag.Error && d.check = "deadlock")
        (Lint.Report.run ctx))

(* --- absint cross-checks --------------------------------------------- *)

(* The abstract interpreter's bounds are sound for whatever the kernel
   actually does with random programs: under zero kernel cost every
   observed per-job execution time sits under the derived WCET bound,
   and the derived footprint accounts for every kernel object the
   trace shows in use. *)
let run_absint_sound (n, kind, _spec_idx, _costly, tick, seed) =
  let rng = Util.Rng.create ~seed in
  let objs = fresh_objects kind in
  let taskset =
    Model.Taskset.of_list
      (List.init n (fun i ->
           let period =
             Util.Rng.choose rng [| ms 10; ms 20; ms 25; ms 40; ms 50 |]
           in
           Model.Task.make ~id:(i + 1) ~period ~wcet:(ms 2) ()))
  in
  let gen = QCheck2.Gen.generate1 ~rand:(Random.State.make [| seed |]) in
  let programs =
    Array.of_list (List.init n (fun _ -> gen (gen_program objs)))
  in
  let programs_fn (task : Model.Task.t) = programs.(task.id - 1) in
  let sc =
    {
      Workload.Scenario.name = "fuzz";
      taskset;
      programs = programs_fn;
      irq_sources = [];
      irq_signals = [];
      irq_writes = [];
    }
  in
  let r = Absint.Report.analyze ~cost:Sim.Cost.zero sc in
  let rank_of_tid tid =
    let tasks = Model.Taskset.tasks taskset in
    let rec find i = if tasks.(i).Model.Task.id = tid then i else find (i + 1) in
    find 0
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset ?tick
      ~programs:programs_fn ()
  in
  Kernel.run k ~until:(ms 150);
  let entries = Sim.Trace.entries (Kernel.trace k) in
  let wcet_sound =
    List.for_all
      (fun (tid, t) ->
        Absint.Itv.dominates
          r.tasks.(rank_of_tid tid).Absint.Report.summary.exec t)
      (Test_absint.observed_job_times entries)
  in
  (* objects the trace shows in use, vs the derived configuration *)
  let sems = Hashtbl.create 4
  and mbs = Hashtbl.create 4
  and sms = Hashtbl.create 4 in
  List.iter
    (fun (st : Sim.Trace.stamped) ->
      match st.entry with
      | Sim.Trace.Sem_acquired { sem; _ } -> Hashtbl.replace sems sem ()
      | Sim.Trace.Msg_sent { mailbox; _ } -> Hashtbl.replace mbs mailbox ()
      | Sim.Trace.State_written { state; _ } -> Hashtbl.replace sms state ()
      | _ -> ())
    entries;
  let footprint_covers =
    Hashtbl.length sems <= r.config.Footprint.semaphores
    && Hashtbl.length mbs <= List.length r.config.Footprint.mailboxes
    && Hashtbl.length sms <= List.length r.config.Footprint.state_messages
    && Model.Taskset.size taskset = r.config.Footprint.threads
  in
  wcet_sound && footprint_covers

let prop_absint_sound =
  qtest ~count:80
    "absint WCET and footprint bounds cover random executions" gen_case
    run_absint_sound

(* --- memory cross-checks --------------------------------------------- *)

(* Realize each generated spec ONCE and feed the same scenario to the
   abstract interpreter, the lint and the kernel, so pool ids line up
   without any rank mapping.  Soundness: the absint per-(task, pool)
   peak-live upper bound dominates the high-water mark the kernel
   observed; agreement: any block the kernel reclaimed at job end was
   predicted by the exact alloc-discipline walk. *)
let lint_predicts_leak diags tid =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  List.exists
    (fun (d : Lint.Diag.t) ->
      d.check = "alloc-discipline"
      && d.task = Some tid
      && contains d.message "still held at job end")
    diags

let run_mem_sound seed =
  let spec = List.hd (Workload.Generator.scenario_specs ~seed ~count:1 ()) in
  let sc = Workload.Generator.realize spec in
  let rep = Absint.Report.analyze sc in
  let diags =
    Lint.Report.run
      (Lint.Ctx.make ~irq_signals:sc.irq_signals ~irq_writes:sc.irq_writes
         ~taskset:sc.taskset ~programs:sc.programs ())
  in
  let horizon =
    let tasks = Model.Taskset.tasks sc.taskset in
    let maxp =
      Array.fold_left (fun a (t : Model.Task.t) -> max a t.period) 0 tasks
    in
    min (2 * maxp) (ms 500)
  in
  let cfg = Fault.Inject.default_config ~scenario:sc ~horizon ~seed:9 () in
  let k = (Fault.Inject.run cfg).kernel in
  let peak_bound tid pool =
    match
      Array.find_opt
        (fun (tb : Absint.Report.task_bound) ->
          tb.task.Model.Task.id = tid)
        rep.tasks
    with
    | None -> None
    | Some tb -> List.assoc_opt pool tb.summary.Absint.Exec.peak_live
  in
  List.for_all
    (fun (m : Kernel.mem_stats) ->
      let dominated =
        match peak_bound m.m_tid m.m_pool with
        | None -> false (* runtime allocation the analysis never saw *)
        | Some itv -> (
          match Absint.Itv.hi_int itv with
          | None -> true (* unbounded trivially dominates *)
          | Some hi -> m.m_high_water <= hi)
      in
      let leak_agreed =
        m.m_leaked = 0 || lint_predicts_leak diags m.m_tid
      in
      dominated && leak_agreed)
    (Kernel.mem_stats k)

let prop_mem_sound =
  qtest ~count:40
    "absint peak-live bounds dominate pool high-water and lint sees leaks"
    QCheck2.Gen.(int_range 1 5_000)
    run_mem_sound

(* --- enforcement cross-checks ---------------------------------------- *)

(* Kernel objects get globally fresh ids, so two replays of the same
   case produce traces identical up to a renaming of sem/mailbox/state
   ids; canonicalize by first occurrence before comparing.  Notes
   interpolate the same ids into free text ("tau4 held back awaiting
   sem844"), so mask any digit run following an object prefix. *)
let mask_note s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let prefixes = [ "sem"; "waitq"; "mbox"; "state" ] in
  let i = ref 0 in
  while !i < n do
    let matched =
      List.find_opt
        (fun p ->
          let lp = String.length p in
          !i + lp < n && String.sub s !i lp = p && is_digit s.[!i + lp])
        prefixes
    in
    (match matched with
    | Some p ->
      Buffer.add_string b p;
      Buffer.add_char b '#';
      i := !i + String.length p;
      while !i < n && is_digit s.[!i] do
        incr i
      done
    | None ->
      Buffer.add_char b s.[!i];
      incr i)
  done;
  Buffer.contents b

let normalize_ids entries =
  let tbl : (string * int, int) Hashtbl.t = Hashtbl.create 8 in
  let canon kind id =
    match Hashtbl.find_opt tbl (kind, id) with
    | Some c -> c
    | None ->
      let c = Hashtbl.length tbl in
      Hashtbl.add tbl (kind, id) c;
      c
  in
  List.map
    (fun (s : Sim.Trace.stamped) ->
      let entry =
        match s.entry with
        | Sim.Trace.Sem_acquired { tid; sem } ->
          Sim.Trace.Sem_acquired { tid; sem = canon "sem" sem }
        | Sem_blocked { tid; sem } -> Sem_blocked { tid; sem = canon "sem" sem }
        | Sem_released { tid; sem } ->
          Sem_released { tid; sem = canon "sem" sem }
        | Approach_parked { tid; sem } ->
          Approach_parked { tid; sem = canon "sem" sem }
        | Msg_sent { tid; mailbox; words } ->
          Msg_sent { tid; mailbox = canon "mb" mailbox; words }
        | Msg_received { tid; mailbox; words; queued_for } ->
          Msg_received { tid; mailbox = canon "mb" mailbox; words; queued_for }
        | State_written { tid; state; seq } ->
          State_written { tid; state = canon "sm" state; seq }
        | State_read { tid; state; seq } ->
          State_read { tid; state = canon "sm" state; seq }
        | Note s -> Note (mask_note s)
        | e -> e
      in
      { s with entry })
    entries

let trace_signature k =
  let tr = Kernel.trace k in
  ( normalize_ids (Sim.Trace.entries tr),
    Sim.Trace.busy_time tr,
    Sim.Trace.context_switches tr )

let total_compute program =
  List.fold_left
    (fun acc -> function Types.Compute d -> acc + d | _ -> acc)
    0 program

(* The harness-wide differential: budgets that can never be exhausted
   (each task's budget = its program's whole compute demand) with
   notify-only policies must be invisible — same entries, busy time
   and switches as the plain pre-enforcement kernel. *)
let prop_enforcement_differential =
  qtest ~count:60 "unexercised enforcement is trace-invisible" gen_case
    (fun case ->
      let plain, _ = run_one case in
      let enforced, _ =
        run_one
          ~make_enforcement:(fun programs ->
            {
              Kernel.budget_of =
                (fun t -> Some (total_compute programs.(t.id - 1)));
              policy = Kernel.Notify_only;
              miss = Kernel.Miss_record;
              shed_one_in = None;
            })
          case
      in
      trace_signature plain = trace_signature enforced)

(* Aggressive enforcement — tight budgets, kill policies, skip-over
   shedding — must never corrupt the kernel: invariants hold, the
   trace stays well-formed, and no job consumes more than its budget
   plus one detection quantum. *)
let enforcement_case ((_, _, _, _, tick, _) as case) =
  let budget = us 1200 in
  let k, horizon =
    run_one
      ~make_enforcement:(fun _ ->
        {
          Kernel.budget_of = (fun _ -> Some budget);
          policy = Kernel.Kill_job;
          miss = Kernel.Miss_kill;
          shed_one_in = Some 2;
        })
      case
  in
  let quantum = Option.value tick ~default:0 in
  let tr = Kernel.trace k in
  Sim.Trace.busy_time tr <= horizon
  && well_formed_trace (Sim.Trace.entries tr) horizon
  && List.for_all
       (fun (s : Kernel.enf_stats) -> s.e_budget_used <= budget + quantum + 1)
       (Kernel.enforcement_stats k)

let prop_enforcement_fuzz =
  qtest ~count:60 "kill/shed enforcement never breaks kernel invariants"
    gen_case enforcement_case

(* Cases this fuzzer once minimized to budget-accounting escapes: the
   tick case deferred an already-banked overrun past every boundary
   the job stopped short of; the no-tick case lost enforcement (and
   the deadline check) for a whole job whose number collided with an
   earlier sporadic arrival's. *)
let enforcement_regressions =
  Alcotest.test_case "enforcement budget-escape regressions" `Quick
    (fun () ->
      List.iter
        (fun case ->
          Alcotest.(check bool) "budget bound holds" true
            (enforcement_case case))
        [
          (2, Types.Standard, 0, false, Some (us 700), 122);
          (2, Types.Standard, 0, false, None, 1640);
        ])

(* Fabric differential: with the empty fault plan, a kernel running as
   a shard — bus, heartbeats, reliable endpoints all in the loop —
   must produce exactly the trace of the same taskset on a standalone
   kernel.  The fabric may only perturb a kernel through explicit
   faults or migrations. *)
let gen_fabric_case =
  QCheck2.Gen.(
    map2
      (fun n seed -> (n, seed))
      (int_range 1 3)
      (int_range 1 10_000))

let fabric_taskset ~seed n =
  let rng = Util.Rng.create ~seed in
  List.init n (fun i ->
      let period = Util.Rng.choose rng [| ms 10; ms 20; ms 25; ms 40; ms 50 |] in
      Model.Task.make ~id:(i + 1) ~period ~wcet:(ms 2) ())

let prop_fabric_empty_plan_differential =
  qtest ~count:40 "fabric with empty plan is trace-invisible" gen_fabric_case
    (fun (n, seed) ->
      let horizon = ms 150 in
      let tasks = fabric_taskset ~seed n in
      let peer =
        (* a second shard with its own load, sharing the wire *)
        List.init 2 (fun i ->
            Model.Task.make ~id:(100 + i) ~period:(ms 20) ~wcet:(ms 1) ())
      in
      let standalone =
        Kernel.create ~cost:Sim.Cost.m68040 ~spec:Sched.Edf
          ~taskset:(Model.Taskset.of_list tasks) ()
      in
      Kernel.run standalone ~until:horizon;
      let engine = Sim.Engine.create () in
      let bus = Fieldbus.Bus.create ~engine ~bitrate_bps:1_000_000 () in
      let cluster =
        Fabric.Cluster.create ~engine ~bus ~cost:Sim.Cost.m68040
          ~spec:Sched.Edf ~seed ~assignments:[ (0, tasks); (1, peer) ] ()
      in
      Fabric.Cluster.install_plan cluster Fault.Plan.empty;
      Fabric.Cluster.run cluster ~until:horizon;
      match Fabric.Cluster.kernel cluster ~node:0 with
      | None -> false
      | Some sharded -> trace_signature standalone = trace_signature sharded)

let suite =
  [
    prop_kernel_fuzz; prop_busy_conservation; prop_lint_clean_runs;
    prop_injected_cycle; prop_absint_sound; prop_mem_sound;
    prop_enforcement_differential; prop_enforcement_fuzz;
    enforcement_regressions; prop_fabric_empty_plan_differential;
  ]

