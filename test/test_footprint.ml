(* The memory-footprint model (§3: "a rich set of OS services in just
   13 kbytes of code"). *)

open Alcotest

let test_code_budget () =
  let total = Emeralds.Footprint.total_code_bytes in
  check bool "about 13 KB of kernel code" true
    (total >= 12_000 && total <= 14_500);
  List.iter
    (fun (name, bytes) ->
      check bool (name ^ " positive") true (bytes > 0);
      check bool (name ^ " small") true (bytes < 4_000))
    Emeralds.Footprint.kernel_code_bytes

let test_ram_model () =
  let base = Emeralds.Footprint.default_config in
  let ram = Emeralds.Footprint.total_ram_bytes base in
  check bool "default config fits small memory" true (ram < 32_768);
  (* monotone in threads *)
  let more = { base with threads = base.threads + 5 } in
  check bool "more threads, more RAM" true
    (Emeralds.Footprint.total_ram_bytes more > ram);
  (* state messages scale with depth x words *)
  let deeper = { base with state_messages = [ (16, 64) ] } in
  let shallow = { base with state_messages = [ (2, 64) ] } in
  check bool "deeper buffers cost more" true
    (Emeralds.Footprint.total_ram_bytes deeper
    > Emeralds.Footprint.total_ram_bytes shallow)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
  in
  scan 0

let test_report_renders () =
  let report = Emeralds.Footprint.report Emeralds.Footprint.default_config in
  check bool "mentions the code total" true (contains report "TOTAL kernel code");
  check bool "mentions RAM" true (contains report "TOTAL kernel-object RAM")

(* the default config and every preset's *derived* config must both fit
   the paper's device envelope — this is the CI tripwire against RAM
   model or scenario changes silently blowing the budget *)
let test_envelope () =
  check bool "default config fits the envelope" true
    (Emeralds.Footprint.within_envelope Emeralds.Footprint.default_config);
  List.iter
    (fun (sc : Workload.Scenario.t) ->
      let r = Absint.Report.analyze sc in
      check bool (sc.name ^ " derived config fits the envelope") true
        (Emeralds.Footprint.within_envelope r.config);
      check int
        (sc.name ^ " total matches code + RAM")
        (Emeralds.Footprint.total_bytes r.config)
        r.total_bytes)
    (Workload.Scenario.all ())

let suite =
  [
    test_case "code budget" `Quick test_code_budget;
    test_case "RAM model" `Quick test_ram_model;
    test_case "report rendering" `Quick test_report_renders;
    test_case "presets fit the memory envelope" `Quick test_envelope;
  ]
