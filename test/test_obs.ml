(* Observability layer: probe hub, streaming histograms/metrics,
   flight recorder, exporters. *)

open Alcotest

let fuzz ?(count = 50) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let ms = Model.Time.ms
let us = Model.Time.us

(* ------------------------------------------------------------------ *)
(* Util.Hist *)

let quantile_points = [ 0.5; 0.9; 0.95; 0.99; 1.0 ]

(* 2/64 bucket width, plus 1 ns of integer-midpoint slack *)
let hist_close ~exact ~approx =
  let tol = 2.0 /. float_of_int Util.Hist.sub_buckets in
  abs_float (float_of_int approx -. exact) <= (tol *. exact) +. 1.0

let test_hist_exact_small () =
  let h = Util.Hist.create () in
  List.iter (Util.Hist.observe h) [ 0; 1; 5; 63; 63 ];
  check int "count" 5 (Util.Hist.count h);
  check int "min" 0 (Util.Hist.min_value h);
  check int "max" 63 (Util.Hist.max_value h);
  check int "sum" 132 (Util.Hist.sum h);
  (* below sub_buckets every value is its own bucket: quantiles exact *)
  check int "p50 exact" 5 (Util.Hist.quantile h 0.5);
  check int "p100 exact" 63 (Util.Hist.quantile h 1.0);
  check (list int) "samples round-trip" [ 0; 1; 5; 63; 63 ]
    (Util.Hist.samples h)

let test_hist_negative_rejected () =
  let h = Util.Hist.create () in
  check_raises "negative sample"
    (Invalid_argument "Hist.observe: negative sample") (fun () ->
      Util.Hist.observe h (-1))

let test_hist_accuracy_vs_percentile () =
  let rng = Util.Rng.create ~seed:42 in
  let samples =
    List.init 1000 (fun _ -> Util.Rng.int_in rng ~lo:0 ~hi:10_000_000)
  in
  let h = Util.Hist.create () in
  List.iter (Util.Hist.observe h) samples;
  let floats = List.map float_of_int samples in
  List.iter
    (fun p ->
      let exact = Util.Stats.percentile floats p in
      let approx = Util.Hist.quantile h p in
      if not (hist_close ~exact ~approx) then
        failf "p%.2f: hist %d vs exact %.0f (>%g relative error)" p approx
          exact
          (2.0 /. float_of_int Util.Hist.sub_buckets))
    quantile_points;
  (* the max is tracked exactly, not bucketed *)
  check int "p100 is exact max" (List.fold_left max 0 samples)
    (Util.Hist.quantile h 1.0)

let hists_equal a b =
  Util.Hist.count a = Util.Hist.count b
  && Util.Hist.sum a = Util.Hist.sum b
  && Util.Hist.min_value a = Util.Hist.min_value b
  && Util.Hist.max_value a = Util.Hist.max_value b
  && Util.Hist.buckets a = Util.Hist.buckets b

let random_hist rng =
  let h = Util.Hist.create () in
  let n = Util.Rng.int_in rng ~lo:1 ~hi:200 in
  for _ = 1 to n do
    Util.Hist.observe h (Util.Rng.int_in rng ~lo:0 ~hi:1_000_000)
  done;
  h

let test_hist_merge_associative () =
  let rng = Util.Rng.create ~seed:5 in
  for _ = 1 to 20 do
    let a = random_hist rng and b = random_hist rng and c = random_hist rng in
    let left = Util.Hist.merge (Util.Hist.merge a b) c in
    let right = Util.Hist.merge a (Util.Hist.merge b c) in
    check bool "assoc" true (hists_equal left right);
    check bool "commutes" true
      (hists_equal (Util.Hist.merge a b) (Util.Hist.merge b a));
    (* merge must not perturb its arguments *)
    check bool "a intact" true (hists_equal a (Util.Hist.merge a (Util.Hist.create ())))
  done

let prop_hist_online_equals_batch =
  fuzz "hist: online = merge of shards" ~count:100
    QCheck2.Gen.(list_size (int_range 1 100) (int_range 0 2_000_000))
    (fun xs ->
      let whole = Util.Hist.create () in
      List.iter (Util.Hist.observe whole) xs;
      (* shard in two, merge — must equal observing the whole list *)
      let a = Util.Hist.create () and b = Util.Hist.create () in
      List.iteri
        (fun i x -> Util.Hist.observe (if i mod 2 = 0 then a else b) x)
        xs;
      hists_equal whole (Util.Hist.merge a b)
      && List.length (Util.Hist.samples whole) = List.length xs)

(* ------------------------------------------------------------------ *)
(* Probe hub *)

let stamp at entry : Sim.Trace.stamped = { at; entry }

let some_events : Sim.Trace.entry list =
  [
    Job_release { tid = 1; job = 1; deadline = ms 5 };
    Context_switch { from_tid = None; to_tid = Some 1 };
    Sem_acquired { tid = 1; sem = 0 };
    Msg_sent { tid = 1; mailbox = 0; words = 4 };
    Interrupt { irq = 3 };
    Overhead { category = Ovh_sched_select; cost = us 1 };
    Budget_overrun { tid = 1; job = 1; used = us 9; budget = us 8 };
    Note "hello";
  ]

let test_probe_masking () =
  let tr = Sim.Trace.create () in
  let p = Obs.Probe.create ~trace:tr () in
  let seen = ref [] in
  Obs.Probe.subscribe p
    ~mask:(Obs.Probe.mask_of [ Obs.Probe.Irq; Obs.Probe.Enforce ])
    (fun s -> seen := s :: !seen);
  List.iteri (fun i e -> Obs.Probe.emit p ~at:i e) some_events;
  let kinds =
    List.rev_map
      (fun (s : Sim.Trace.stamped) ->
        let k, _, _ = Sim.Trace.csv_fields s.entry in
        k)
      !seen
  in
  check (list string) "only subscribed categories" [ "irq"; "overrun" ] kinds;
  (* the built-in trace saw everything regardless *)
  check int "trace got all" (List.length some_events)
    (List.length (Sim.Trace.entries tr))

let test_probe_trace_mask () =
  let tr = Sim.Trace.create () in
  let p = Obs.Probe.create ~trace:tr () in
  Obs.Probe.set_trace_mask p (Obs.Probe.mask_of [ Obs.Probe.Job ]);
  List.iteri (fun i e -> Obs.Probe.emit p ~at:i e) some_events;
  check int "trace filtered to job events" 1
    (List.length (Sim.Trace.entries tr))

let test_probe_category_names () =
  List.iter
    (fun c ->
      match Obs.Probe.category_of_name (Obs.Probe.category_name c) with
      | Some c' -> check bool "name round-trip" true (c = c')
      | None -> fail "category name did not round-trip")
    Obs.Probe.all_categories;
  check bool "unknown name" true (Obs.Probe.category_of_name "bogus" = None)

(* Attaching observability subscribers must not change what the kernel
   records: the acceptance criterion's "bit-identical" differential. *)
let test_kernel_trace_unperturbed () =
  let run ~observe =
    let k =
      Emeralds.Kernel.create ~cost:Sim.Cost.m68040 ~spec:Emeralds.Sched.Rm
        ~taskset:Workload.Presets.table2 ()
    in
    if observe then begin
      let m = Obs.Metrics.create () in
      Obs.Metrics.attach m (Emeralds.Kernel.probe k);
      let fr =
        Obs.Flightrec.create ~bytes:32_768
          ~triggers:[ Obs.Flightrec.On_miss; On_overrun; On_kill ]
          ()
      in
      Obs.Flightrec.attach fr (Emeralds.Kernel.probe k)
    end;
    Emeralds.Kernel.run k ~until:(ms 100);
    Sim.Trace.to_csv (Emeralds.Kernel.trace k)
  in
  check string "trace bit-identical with subscribers attached"
    (run ~observe:false) (run ~observe:true)

(* Branch decisions are part of the deterministic replay contract:
   with probes disabled, two runs of the branchy preset from the same
   input seed must be bit-identical — same branch outcomes, same
   everything — while a different input seed steers jobs down
   different paths. *)
let test_branchy_replay_bit_identical () =
  (* one scenario for both runs: object ids are drawn from a global
     counter, so two [branchy] realizations would differ in pool id *)
  let scenario = Option.get (Workload.Scenario.make "branchy") in
  let run ~input_seed =
    let k =
      Emeralds.Kernel.create ~cost:Sim.Cost.m68040 ~spec:Emeralds.Sched.Rm
        ~taskset:scenario.taskset ~programs:scenario.programs ~input_seed ()
    in
    Emeralds.Kernel.run k ~until:(ms 100);
    Sim.Trace.to_csv (Emeralds.Kernel.trace k)
  in
  let a = run ~input_seed:7 in
  check string "same seed replays bit-identically" a (run ~input_seed:7);
  check bool "the trace records branch decisions" true
    (let rec find i =
       i >= 0 && (String.length a - i >= 6 && String.sub a i 6 = "branch" || find (i - 1))
     in
     find (String.length a - 6));
  check bool "a different input seed takes different paths" true
    (a <> run ~input_seed:8)

(* The Mem category: alloc-demo's grants and frees reach a Mem-masked
   subscriber, the live-blocks metric tracks pool occupancy within
   capacity, and probing changes nothing in the kernel's own trace. *)
let test_mem_category_and_live_metrics () =
  (* one scenario for both runs: object ids are drawn from a global
     counter, so two [alloc_demo ()] calls would differ in pool id *)
  let scenario = Workload.Scenario.alloc_demo () in
  let run ~probe_mem =
    let m = Obs.Metrics.create () in
    let seen = ref 0 in
    let cfg =
      {
        (Fault.Inject.default_config ~scenario ~horizon:(ms 100) ~seed:7 ())
        with
        observer =
          Some
            (fun k ->
              let p = Emeralds.Kernel.probe k in
              if probe_mem then begin
                Obs.Metrics.attach m p;
                Obs.Probe.subscribe p
                  ~mask:(Obs.Probe.mask_of [ Obs.Probe.Mem ])
                  (fun _ -> incr seen)
              end);
      }
    in
    let outcome = Fault.Inject.run cfg in
    (m, !seen, Sim.Trace.to_csv (Emeralds.Kernel.trace outcome.kernel))
  in
  let m, seen, csv = run ~probe_mem:true in
  check bool "mem events reached the subscriber" true (seen > 0);
  (match Obs.Metrics.live_pools m with
  | [ pool ] ->
    let h = Option.get (Obs.Metrics.live_blocks m ~pool) in
    check bool "blocks were live" true (Util.Hist.max_value h >= 3);
    check bool "high-water within the pool's 8 blocks" true
      (Util.Hist.max_value h <= 8)
  | l -> failf "expected one pool in the live metric, got %d" (List.length l));
  let _, _, csv_plain = run ~probe_mem:false in
  check string "kernel trace bit-identical with mem probes attached"
    csv_plain csv

(* ------------------------------------------------------------------ *)
(* Metrics *)

let engine_outcome ?observer ?(keep_trace = true) () =
  let scenario = Option.get (Workload.Scenario.make "engine") in
  let cfg =
    {
      (Fault.Inject.default_config ~scenario ~spec:Emeralds.Sched.Rm
         ~horizon:(ms 100) ~seed:7 ())
      with
      keep_trace;
      observer;
    }
  in
  Fault.Inject.run cfg

let with_metrics () =
  let m = Obs.Metrics.create () in
  let outcome =
    engine_outcome
      ~observer:(fun k -> Obs.Metrics.attach m (Emeralds.Kernel.probe k))
      ()
  in
  (m, outcome)

let test_metrics_percentiles_vs_trace () =
  let m, outcome = with_metrics () in
  let tr = Emeralds.Kernel.trace outcome.kernel in
  let tids = Obs.Metrics.response_tids m in
  check bool "some tasks completed jobs" true (tids <> []);
  List.iter
    (fun tid ->
      let exact = List.map float_of_int (Sim.Trace.responses tr ~tid) in
      let h = Option.get (Obs.Metrics.response m ~tid) in
      check int "count matches trace" (List.length exact) (Util.Hist.count h);
      List.iter
        (fun p ->
          let e = Util.Stats.percentile exact p in
          let a = Util.Hist.quantile h p in
          if not (hist_close ~exact:e ~approx:a) then
            failf "tau%d p%.2f: metrics %d vs trace %.0f" tid p a e)
        quantile_points)
    tids

let test_metrics_counters_match_trace () =
  let m, outcome = with_metrics () in
  let tr = Emeralds.Kernel.trace outcome.kernel in
  check int "switch counter" (Sim.Trace.context_switches tr)
    (Obs.Metrics.counter m "switch");
  check int "miss counter" (Sim.Trace.deadline_misses tr)
    (Obs.Metrics.counter m "miss");
  check int "never-seen kind" 0 (Obs.Metrics.counter m "bogus")

(* The satellite fuzz property: metrics folded online during the run
   equal metrics recomputed from the full keep_entries:true trace. *)
let metrics_equal a b =
  Obs.Metrics.counters a = Obs.Metrics.counters b
  && Obs.Metrics.response_tids a = Obs.Metrics.response_tids b
  && List.for_all
       (fun tid ->
         hists_equal
           (Option.get (Obs.Metrics.response a ~tid))
           (Option.get (Obs.Metrics.response b ~tid)))
       (Obs.Metrics.response_tids a)
  && Obs.Metrics.blocking_tids a = Obs.Metrics.blocking_tids b
  && List.for_all
       (fun tid ->
         hists_equal
           (Option.get (Obs.Metrics.blocking a ~tid))
           (Option.get (Obs.Metrics.blocking b ~tid)))
       (Obs.Metrics.blocking_tids a)
  && hists_equal (Obs.Metrics.irq_latency a) (Obs.Metrics.irq_latency b)
  && hists_equal (Obs.Metrics.ready_depth a) (Obs.Metrics.ready_depth b)
  && List.for_all2
       (fun (ca, ha) (cb, hb) -> ca = cb && hists_equal ha hb)
       (Obs.Metrics.overhead a) (Obs.Metrics.overhead b)

let prop_metrics_online_equals_replay =
  fuzz "metrics: online = replay of kept trace" ~count:15
    QCheck2.Gen.(
      pair (int_range 0 1000)
        (oneofl [ "table2"; "engine"; "avionics"; "voice" ]))
    (fun (seed, name) ->
      let scenario = Option.get (Workload.Scenario.make name) in
      let online = Obs.Metrics.create () in
      let cfg =
        {
          (Fault.Inject.default_config ~scenario ~spec:Emeralds.Sched.Rm
             ~horizon:(ms 50) ~seed ())
          with
          observer =
            Some
              (fun k -> Obs.Metrics.attach online (Emeralds.Kernel.probe k));
        }
      in
      let outcome = Fault.Inject.run cfg in
      let replay = Obs.Metrics.create () in
      List.iter
        (Obs.Metrics.observe replay)
        (Sim.Trace.entries (Emeralds.Kernel.trace outcome.kernel));
      metrics_equal online replay)

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_flightrec_wraps () =
  let bytes = 4 * Obs.Flightrec.slot_bytes in
  let fr = Obs.Flightrec.create ~bytes ~triggers:[] () in
  check int "capacity" 4 (Obs.Flightrec.capacity fr);
  check int "footprint" bytes (Obs.Flightrec.footprint_bytes fr);
  for i = 1 to 10 do
    Obs.Flightrec.record fr (stamp i (Sim.Trace.Note (string_of_int i)))
  done;
  check int "total offered" 10 (Obs.Flightrec.total_recorded fr);
  let window = Obs.Flightrec.dump fr in
  check (list int) "last capacity events, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun (s : Sim.Trace.stamped) -> s.at) window)

let test_flightrec_freezes_at_trigger () =
  let fr =
    Obs.Flightrec.create
      ~bytes:(8 * Obs.Flightrec.slot_bytes)
      ~triggers:[ Obs.Flightrec.On_overrun ] ()
  in
  Obs.Flightrec.record fr (stamp 1 (Sim.Trace.Note "before"));
  Obs.Flightrec.record fr
    (stamp 2 (Sim.Trace.Deadline_miss { tid = 1; job = 1; lateness = 0 }));
  (* miss is not armed: still recording *)
  check bool "not yet triggered" true (Obs.Flightrec.triggered fr = None);
  Obs.Flightrec.record fr
    (stamp 3
       (Sim.Trace.Budget_overrun { tid = 1; job = 1; used = 9; budget = 8 }));
  Obs.Flightrec.record fr (stamp 4 (Sim.Trace.Note "after freeze"));
  check bool "triggered" true (Obs.Flightrec.triggered fr <> None);
  let window = Obs.Flightrec.dump fr in
  check int "post-trigger events ignored" 3 (List.length window);
  (match List.rev window with
  | { entry = Sim.Trace.Budget_overrun _; _ } :: _ -> ()
  | _ -> fail "window must end at the triggering overrun");
  check_raises "undersized ring"
    (Invalid_argument "Flightrec.create: 10 bytes < one 48-byte slot")
    (fun () -> ignore (Obs.Flightrec.create ~bytes:10 ~triggers:[] ()))

(* Trigger matrix: each armed trigger freezes exactly on its own event
   kind and stays live through every other kind. *)
let test_flightrec_trigger_matrix () =
  let matrix =
    [
      (Obs.Flightrec.On_miss, "miss",
       Sim.Trace.Deadline_miss { tid = 1; job = 1; lateness = 0 });
      (Obs.Flightrec.On_overrun, "overrun",
       Sim.Trace.Budget_overrun { tid = 1; job = 1; used = 9; budget = 8 });
      (Obs.Flightrec.On_kill, "kill",
       Sim.Trace.Job_killed { tid = 1; job = 1 });
      (Obs.Flightrec.On_oom, "oom",
       Sim.Trace.Pool_oom { tid = 1; pool = 2 });
      (Obs.Flightrec.On_quota, "quota",
       Sim.Trace.Quota_exceeded { tid = 1; job = 1; live = 5; quota = 4 });
      (Obs.Flightrec.On_net_timeout, "net-timeout",
       Sim.Trace.Net_timeout { node = 1; seq = 3 });
    ]
  in
  List.iter
    (fun (armed, name, _) ->
      let fr =
        Obs.Flightrec.create
          ~bytes:(16 * Obs.Flightrec.slot_bytes)
          ~triggers:[ armed ] ()
      in
      (* every *other* event kind leaves the recorder live... *)
      List.iter
        (fun (other, _, entry) ->
          if other <> armed then Obs.Flightrec.record fr (stamp 1 entry))
        matrix;
      check bool (name ^ ": other kinds do not trip") true
        (Obs.Flightrec.triggered fr = None);
      (* ...and its own kind freezes it *)
      let _, _, own = List.find (fun (t, _, _) -> t = armed) matrix in
      Obs.Flightrec.record fr (stamp 2 own);
      match Obs.Flightrec.triggered fr with
      | Some { entry; _ } when entry = own -> ()
      | _ -> fail (name ^ ": armed trigger must freeze on its own event"))
    matrix

let test_flightrec_within_envelope () =
  (* the default CLI arming: 32 KB, the envelope's small end *)
  let lo, hi = Emeralds.Footprint.envelope in
  let fr = Obs.Flightrec.create ~bytes:lo ~triggers:[] () in
  check bool "32 KB ring fits the envelope" true
    (Obs.Flightrec.footprint_bytes fr <= lo);
  check bool "capacity is hundreds of events" true
    (Obs.Flightrec.capacity fr >= 500);
  check bool "slot accounting inside the big envelope" true
    (Obs.Flightrec.footprint_bytes fr < hi)

let test_flightrec_dump_ends_at_first_overrun () =
  (* the acceptance demo: overrun-demo injection, 32 KB armed ring *)
  let scenario = Workload.Scenario.overrun_demo () in
  let fr =
    Obs.Flightrec.create ~bytes:32_768 ~triggers:[ Obs.Flightrec.On_overrun ]
      ()
  in
  let cfg =
    {
      (Fault.Inject.default_config ~scenario ~spec:Emeralds.Sched.Rm
         ~enforcement:
           {
             Emeralds.Kernel.budget_of = Fault.Inject.declared_budgets;
             policy = Emeralds.Kernel.Notify_only;
             miss = Emeralds.Kernel.Miss_record;
             shed_one_in = None;
           }
         ~plan:[ Fault.Plan.Wcet_scale { tid = 2; pct = 400; from_job = 1 } ]
         ())
      with
      observer = Some (fun k -> Obs.Flightrec.attach fr (Emeralds.Kernel.probe k));
    }
  in
  let outcome = Fault.Inject.run cfg in
  let tr = Emeralds.Kernel.trace outcome.kernel in
  check bool "run did overrun" true (Sim.Trace.budget_overruns tr > 0);
  let first_overrun =
    List.find_map
      (fun ({ at; entry } : Sim.Trace.stamped) ->
        match entry with Sim.Trace.Budget_overrun _ -> Some at | _ -> None)
      (Sim.Trace.entries tr)
  in
  match List.rev (Obs.Flightrec.dump fr) with
  | { at; entry = Sim.Trace.Budget_overrun _ } :: _ ->
    check int "frozen at the run's first overrun"
      (Option.get first_overrun) at
  | _ -> fail "dump must end at the first Budget_overrun"

(* ------------------------------------------------------------------ *)
(* Exporters *)

(* Minimal JSON syntax checker (no JSON library in the toolchain):
   accepts exactly the value grammar the exporters can produce. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t')
    do
      incr pos
    done
  in
  let fail_at = ref None in
  let error () =
    if !fail_at = None then fail_at := Some !pos;
    false
  in
  let expect c =
    if !pos < n && s.[!pos] = c then (
      incr pos;
      true)
    else error ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> keyword "true"
    | Some 'f' -> keyword "false"
    | Some 'n' -> keyword "null"
    | _ -> error ()
  and keyword k =
    let m = String.length k in
    if !pos + m <= n && String.sub s !pos m = k then (
      pos := !pos + m;
      true)
    else error ()
  and number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    !pos > start || error ()
  and string_lit () =
    expect '"'
    &&
    let fine = ref true and closed = ref false in
    while !fine && not !closed do
      if !pos >= n then fine := false
      else
        match s.[!pos] with
        | '"' ->
          closed := true;
          incr pos
        | '\\' -> pos := !pos + 2
        | c when Char.code c < 0x20 -> fine := false
        | _ -> incr pos
    done;
    !fine || error ()
  and obj () =
    expect '{'
    &&
    (skip_ws ();
     if peek () = Some '}' then expect '}'
     else
       let ok = ref (member ()) in
       skip_ws ();
       while !ok && peek () = Some ',' do
         incr pos;
         ok := member ();
         skip_ws ()
       done;
       !ok && expect '}')
  and member () =
    skip_ws ();
    string_lit ()
    && (skip_ws ();
        expect ':')
    && value ()
  and arr () =
    expect '['
    &&
    (skip_ws ();
     if peek () = Some ']' then expect ']'
     else
       let ok = ref (value ()) in
       skip_ws ();
       while !ok && peek () = Some ',' do
         incr pos;
         ok := value ();
         skip_ws ()
       done;
       !ok && expect ']')
  in
  let ok = value () in
  skip_ws ();
  ok && !pos = n

let test_json_validator_self_check () =
  check bool "accepts object" true
    (json_valid {|{"a":[1,2.5,-3e4],"b":"x\"y","c":null}|});
  check bool "rejects trailing junk" false (json_valid "{}g");
  check bool "rejects bare comma" false (json_valid "[1,]");
  check bool "rejects unclosed string" false (json_valid {|{"a":"b}|})

let test_perfetto_export () =
  let m, outcome = with_metrics () in
  ignore m;
  let events = Sim.Trace.entries (Emeralds.Kernel.trace outcome.kernel) in
  let out = Obs.Export.perfetto events in
  check bool "perfetto JSON parses" true (json_valid out);
  check bool "has traceEvents" true
    (String.length out > 20 && String.sub out 0 15 = {|{"traceEvents":|});
  (* every B has a matching E: count them *)
  let count pat =
    let p = ref 0 and found = ref 0 in
    let pl = String.length pat in
    while !p + pl <= String.length out do
      if String.sub out !p pl = pat then incr found;
      incr p
    done;
    !found
  in
  check int "balanced slices" (count {|"ph":"B"|}) (count {|"ph":"E"|});
  check bool "instants present" true (count {|"ph":"i"|} > 0)

(* With ?blame, each closed job adds one "C" counter sample, and the
   missed deadline gains a flow arrow labelled with the dominant cause
   (the seeded inversion's semaphore). *)
let test_perfetto_blame_export () =
  let scenario = Workload.Scenario.inversion_demo () in
  let k =
    Emeralds.Kernel.create ~cost:Sim.Cost.m68040 ~spec:Emeralds.Sched.Rm
      ~taskset:scenario.taskset ~programs:scenario.programs ()
  in
  Emeralds.Kernel.run k ~until:(Model.Time.ms 60);
  let tr = Emeralds.Kernel.trace k in
  check bool "inversion demo misses" true (Sim.Trace.deadline_misses tr > 0);
  let events = Sim.Trace.entries tr in
  let out =
    Obs.Export.perfetto ~blame:(Obs.Blame.of_taskset scenario.taskset) events
  in
  check bool "blame perfetto JSON parses" true (json_valid out);
  let count pat =
    let p = ref 0 and found = ref 0 in
    let pl = String.length pat in
    while !p + pl <= String.length out do
      if String.sub out !p pl = pat then incr found;
      incr p
    done;
    !found
  in
  let completions =
    List.length
      (List.filter
         (fun ({ entry; _ } : Sim.Trace.stamped) ->
           match entry with Sim.Trace.Job_complete _ -> true | _ -> false)
         events)
  in
  check bool "has completions" true (completions > 0);
  check int "one counter sample per closed job" completions
    (count {|"ph":"C"|});
  check int "flow start/finish balanced" (count {|"ph":"s"|})
    (count {|"ph":"f"|});
  check bool "miss gains a flow arrow" true (count {|"ph":"s"|} > 0);
  check bool "flow names the blocking semaphore" true
    (count {|"name":"blame: sem |} > 0)

let test_metrics_json_export () =
  let m, _ = with_metrics () in
  check bool "metrics JSON parses" true (json_valid (Obs.Export.metrics_json m))

(* text/plain 0.0.4: every non-comment line is `name{labels} value` or
   `name value`, name in [a-z0-9_], value an integer here. *)
let prometheus_line_ok line =
  match String.index_opt line ' ' with
  | None -> false
  | Some sp ->
    let series = String.sub line 0 sp in
    let v = String.sub line (sp + 1) (String.length line - sp - 1) in
    let name_ok name =
      name <> ""
      && String.for_all
           (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
           name
    in
    let series_ok =
      match String.index_opt series '{' with
      | None -> name_ok series
      | Some b ->
        name_ok (String.sub series 0 b)
        && String.length series > b + 1
        && series.[String.length series - 1] = '}'
    in
    series_ok && int_of_string_opt v <> None

let test_prometheus_export () =
  let m, _ = with_metrics () in
  let text = Obs.Export.prometheus m in
  let lines =
    List.filter (fun l -> l <> "" && l.[0] <> '#')
      (String.split_on_char '\n' text)
  in
  check bool "exposition is non-trivial" true (List.length lines > 10);
  List.iter
    (fun l ->
      if not (prometheus_line_ok l) then failf "bad exposition line: %s" l)
    lines;
  check bool "response series present" true
    (List.exists
       (fun l ->
         String.length l > 25
         && String.sub l 0 25 = "emeralds_response_time_ns")
       lines)

let suite =
  [
    test_case "hist: small values exact" `Quick test_hist_exact_small;
    test_case "hist: negative rejected" `Quick test_hist_negative_rejected;
    test_case "hist: accuracy vs Stats.percentile" `Quick
      test_hist_accuracy_vs_percentile;
    test_case "hist: merge associative/commutative" `Quick
      test_hist_merge_associative;
    prop_hist_online_equals_batch;
    test_case "probe: subscriber masking" `Quick test_probe_masking;
    test_case "probe: trace mask" `Quick test_probe_trace_mask;
    test_case "probe: category names round-trip" `Quick
      test_probe_category_names;
    test_case "probe: kernel trace unperturbed by subscribers" `Quick
      test_kernel_trace_unperturbed;
    test_case "branchy replay is bit-identical per input seed" `Quick
      test_branchy_replay_bit_identical;
    test_case "probe: mem category and live-block metrics" `Quick
      test_mem_category_and_live_metrics;
    test_case "metrics: percentiles match kept trace" `Quick
      test_metrics_percentiles_vs_trace;
    test_case "metrics: counters match trace" `Quick
      test_metrics_counters_match_trace;
    prop_metrics_online_equals_replay;
    test_case "flightrec: ring wraps" `Quick test_flightrec_wraps;
    test_case "flightrec: freezes at trigger" `Quick
      test_flightrec_freezes_at_trigger;
    test_case "flightrec: trigger matrix" `Quick
      test_flightrec_trigger_matrix;
    test_case "flightrec: envelope accounting" `Quick
      test_flightrec_within_envelope;
    test_case "flightrec: overrun-demo dump ends at first overrun" `Quick
      test_flightrec_dump_ends_at_first_overrun;
    test_case "export: json validator self-check" `Quick
      test_json_validator_self_check;
    test_case "export: perfetto JSON" `Quick test_perfetto_export;
    test_case "export: perfetto blame tracks" `Quick
      test_perfetto_blame_export;
    test_case "export: metrics JSON" `Quick test_metrics_json_export;
    test_case "export: prometheus line format" `Quick test_prometheus_export;
  ]
