(* Regression tests for kernel and analysis bugs falsified by the
   differential soundness campaign (lib/campaign) and the enforcement
   fuzzer.  Each test pins the minimal mechanism; the campaign suite
   replays the original generated scenarios end-to-end. *)

open Alcotest
open Emeralds

let ms = Model.Time.ms
let us = Model.Time.us

let taskset_of rows =
  Model.Taskset.of_list
    (List.map
       (fun (id, period, wcet) -> Model.Task.make ~id ~period ~wcet ())
       rows)

(* A job that crosses its budget inside a burst segment that ends
   before the next tick boundary, then blocks.  Detection must fire as
   soon as the job runs again: the old probe re-quantized forward on
   every re-arm, so a job yielding just before each boundary overran
   without bound (campaign fuzz case n=2 std Edf tick=700us seed=122:
   1968us consumed against a 1200us budget, zero overruns). *)
let test_budget_probe_overdue () =
  let wq = Objects.waitq () in
  let taskset = taskset_of [ (1, ms 50, ms 3) ] in
  let program _ =
    [
      Program.compute (us 1100);
      Program.wait wq;
      Program.compute (us 500);
      Program.wait wq;
      Program.compute (us 400);
    ]
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset
      ~tick:(us 700) ~programs:program ()
  in
  let budget = us 1000 in
  Kernel.set_enforcement k
    (Some
       {
         Kernel.budget_of = (fun _ -> Some budget);
         policy = Kernel.Kill_job;
         miss = Kernel.Miss_record;
         shed_one_in = None;
       });
  (* resume instants sit strictly between tick boundaries, and each
     resumed burst ends before the next boundary *)
  Kernel.at k ~at:(us 5_000) (fun () -> Kernel.signal_waitq k wq);
  Kernel.at k ~at:(us 9_300) (fun () -> Kernel.signal_waitq k wq);
  Kernel.run k ~until:(ms 15);
  let st = List.hd (Kernel.enforcement_stats k) in
  check bool "overrun detected" true (st.e_overruns >= 1);
  check bool "kill happened" true (st.e_kills >= 1);
  check bool "budget bound holds" true
    (st.e_budget_used <= budget + us 700 + 1)

(* Sporadic triggers used to steal the next periodic job number; the
   later periodic release then re-used it, and [begin_job] started a
   job with [job_no = completed_job] — which silently disabled its
   budget probe and deadline check (both guard on
   [completed_job < job]).  Job numbers must be strictly increasing
   per task across mixed periodic and sporadic arrivals. *)
let test_job_numbers_unique () =
  let taskset = taskset_of [ (1, ms 20, ms 2) ] in
  let program _ = [ Program.compute (us 1500) ] in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset
      ~programs:program ()
  in
  let budget = us 1000 in
  Kernel.set_enforcement k
    (Some
       {
         Kernel.budget_of = (fun _ -> Some budget);
         policy = Kernel.Kill_job;
         miss = Kernel.Miss_kill;
         shed_one_in = None;
       });
  (* a sporadic arrival between the first two periodic releases *)
  Kernel.trigger_job_at k ~at:(ms 10) ~tid:1;
  Kernel.run k ~until:(ms 70);
  let releases =
    List.filter_map
      (fun (st : Sim.Trace.stamped) ->
        match st.entry with
        | Sim.Trace.Job_release { tid = 1; job; _ } -> Some job
        | _ -> None)
      (Sim.Trace.entries (Kernel.trace k))
  in
  check bool "several jobs released" true (List.length releases >= 4);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check bool "job numbers strictly increasing" true (increasing releases);
  (* every admitted job overruns its 1000us budget by construction;
     with unique numbering none escapes detection *)
  let st = List.hd (Kernel.enforcement_stats k) in
  check int "every job detected" (List.length releases) st.e_overruns

(* Back-to-back critical sections with no CPU-yielding instruction
   between them execute as one kernel episode: the releasing task is
   re-granted by direct hand-off ahead of higher-priority tasks that
   have not issued their own acquire.  [blocking_sections] must emit
   the merged chain (summed duration) alongside the individual
   members.  A genuine yield ([Compute]/[Delay]) breaks the chain; a
   [Wait] does not, because it may complete instantly off a pending
   signal. *)
let test_chain_blocking_sections () =
  let s1 = Objects.sem ~kind:Types.Emeralds () in
  let s2 = Objects.sem ~kind:Types.Emeralds () in
  let wq = Objects.waitq () in
  let taskset = taskset_of [ (1, ms 10, ms 1); (2, ms 50, ms 2) ] in
  let chained (t : Model.Task.t) =
    if t.id = 1 then [ Program.compute (us 100) ]
    else
      [
        Program.acquire s1;
        Program.compute (us 100);
        Program.release s1;
        Program.wait wq (* may complete instantly: chain continues *);
        Program.acquire s2;
        Program.compute (us 200);
        Program.release s2;
      ]
  in
  let ctx = Lint.Ctx.make ~taskset ~programs:chained () in
  let merged =
    List.filter
      (fun (cs : Analysis.Blocking.critical_section) -> cs.chained <> [])
      (Lint.Blocking_terms.blocking_sections ctx)
  in
  (match merged with
  | [ cs ] ->
    check int "merged duration sums the chain" (us 300) cs.duration;
    check int "merged section is the low task's" 1 cs.task_rank
  | l -> failf "expected one merged section, got %d" (List.length l));
  let broken (t : Model.Task.t) =
    if t.id = 1 then [ Program.compute (us 100) ]
    else
      [
        Program.acquire s1;
        Program.compute (us 100);
        Program.release s1;
        Program.compute (us 50) (* yields: chain broken *);
        Program.acquire s2;
        Program.compute (us 200);
        Program.release s2;
      ]
  in
  let ctx = Lint.Ctx.make ~taskset ~programs:broken () in
  check int "yield breaks the chain" 0
    (List.length
       (List.filter
          (fun (cs : Analysis.Blocking.critical_section) -> cs.chained <> [])
          (Lint.Blocking_terms.blocking_sections ctx)))

(* The merged chain must be emitted in addition to its members — the
   members carry their own semaphores for ceiling and nested-wait
   lookups, and dropping them shrank other ranks' blocking terms. *)
let test_chain_keeps_members () =
  let s1 = Objects.sem ~kind:Types.Emeralds () in
  let taskset = taskset_of [ (1, ms 10, ms 1); (2, ms 50, ms 2) ] in
  let programs (t : Model.Task.t) =
    if t.id = 1 then [ Program.acquire s1; Program.release s1 ]
    else
      [
        Program.acquire s1;
        Program.compute (us 100);
        Program.release s1;
        Program.acquire s1;
        Program.compute (us 200);
        Program.release s1;
      ]
  in
  let ctx = Lint.Ctx.make ~taskset ~programs ()  in
  let low =
    List.filter
      (fun (cs : Analysis.Blocking.critical_section) -> cs.task_rank = 1)
      (Lint.Blocking_terms.blocking_sections ctx)
  in
  let durations =
    List.sort compare
      (List.map
         (fun (cs : Analysis.Blocking.critical_section) -> cs.duration)
         low)
  in
  check (list int) "members and merged chain all present"
    [ us 100; us 200; us 300 ]
    durations;
  (* the blocking term for rank 0 counts the whole chained episode *)
  let b = Lint.Blocking_terms.blocking_terms ctx in
  check bool "rank-0 blocking covers the chain" true (b.(0) >= us 300)

(* Direct hand-off at [sem_release] must re-inherit from the waiters
   that remain queued: the wait list is rank-sorted, so the new holder
   already dominates every remaining waiter's rank, but a remaining
   waiter's *deadline* component can be tighter.  Under EDF the
   un-re-inherited holder ran at its own (laxer) deadline and a
   model-checked PI property caught the inversion (campaign scenario
   gen-2468). *)
let test_handoff_reinherits_deadline () =
  let s = Objects.sem ~kind:Types.Emeralds () in
  (* tau3 (lowest rank) holds the lock; tau1 and tau2 queue on it.
     tau1 has the better RM rank and receives the hand-off, but tau2's
     deadline is the tighter one at that instant. *)
  let taskset =
    taskset_of [ (1, ms 40, ms 4); (2, ms 50, ms 2); (3, ms 60, ms 6) ]
  in
  let programs (t : Model.Task.t) =
    if t.id = 3 then
      [
        Program.compute (us 100);
        Program.acquire s;
        Program.compute (us 2000);
        Program.release s;
      ]
    else if t.id = 1 then
      [
        Program.compute (us 500);
        Program.acquire s;
        Program.compute (us 3000);
        Program.release s;
      ]
    else
      [
        Program.compute (us 800);
        Program.acquire s;
        Program.compute (us 200);
        Program.release s;
      ]
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset
      ~programs ()
  in
  Kernel.run k ~until:(ms 30);
  Kernel.check_invariants k;
  (* the hand-off recipient holds the lock while tau2 still waits; its
     effective deadline must be at least as tight as any waiter's *)
  let tr = Sim.Trace.entries (Kernel.trace k) in
  check bool "simulation produced hand-offs" true
    (List.exists
       (fun (st : Sim.Trace.stamped) ->
         match st.entry with
         | Sim.Trace.Sem_acquired _ -> true
         | _ -> false)
       tr);
  (* the model checker mirrors the hand-off; its PI property explores
     every interleaving of the same contention and must stay clean *)
  let sc =
    {
      Workload.Scenario.name = "handoff-reinherit";
      taskset;
      programs;
      irq_sources = [];
      irq_signals = [];
      irq_writes = [];
    }
  in
  let m = Mc.Machine.of_scenario sc in
  let props = List.filter_map Mc.Props.by_name [ "pi"; "invariants" ] in
  let bounds =
    { Mc.Explorer.horizon = ms 60; max_states = 20_000; max_depth = 4_000 }
  in
  let res = Mc.Explorer.check ~props ~bounds m in
  (match res.verdict with
  | `Ok -> ()
  | `Violation _ -> fail "MC found a PI violation after hand-off")

let suite =
  [
    test_case "budget probe fires when detection is overdue" `Quick
      test_budget_probe_overdue;
    test_case "job numbers stay unique across sporadic arrivals" `Quick
      test_job_numbers_unique;
    test_case "back-to-back critical sections merge into a chain" `Quick
      test_chain_blocking_sections;
    test_case "chain merge keeps individual members" `Quick
      test_chain_keeps_members;
    test_case "hand-off re-inherits remaining waiters' deadlines" `Quick
      test_handoff_reinherits_deadline;
  ]
