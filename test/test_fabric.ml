(* The fault-tolerant fabric: wire format, reliable delivery,
   crash failover within the static bound, probe bit-identity. *)

open Alcotest

let ms = Model.Time.ms

let task ~id ~period_ms ~wcet_ms =
  Model.Task.make ~id ~period:(ms period_ms) ~wcet:(ms wcet_ms) ()

let setup () =
  let engine = Sim.Engine.create () in
  let bus = Fieldbus.Bus.create ~engine ~bitrate_bps:1_000_000 () in
  (engine, bus)

(* ------------------------------------------------------------------ *)
(* Wire *)

let test_wire_roundtrip () =
  let kinds =
    [
      Fabric.Wire.Heartbeat;
      Fabric.Wire.Ack;
      Fabric.Wire.Task_begin;
      Fabric.Wire.Task_word;
      Fabric.Wire.Task_end;
      Fabric.Wire.Commit;
    ]
  in
  List.iter
    (fun kind ->
      List.iter
        (fun (src, dst, seq, arg, data) ->
          let m = { Fabric.Wire.kind; src; dst; seq; arg; data } in
          match Fabric.Wire.unpack (Fabric.Wire.pack m) with
          | None -> fail "round-trip lost a message"
          | Some m' ->
            check bool
              (Printf.sprintf "round-trip %s" (Fabric.Wire.kind_name kind))
              true (m = m'))
        [
          (0, 1, 0, 0, 0);
          (3, Fabric.Wire.broadcast_dst, 77, 123, 0);
          (15, 0, 65_535, 65_535, max_int);
          (7, 9, 1, 777, ms 5);
        ])
    kinds

let test_wire_field_validation () =
  let m src dst seq arg =
    { Fabric.Wire.kind = Fabric.Wire.Ack; src; dst; seq; arg; data = 0 }
  in
  List.iter
    (fun bad ->
      check bool "oversized field rejected" true
        (try
           ignore (Fabric.Wire.pack bad);
           false
         with Invalid_argument _ -> true))
    [ m 64 0 0 0; m 0 64 0 0; m 0 1 65_536 0; m 0 1 0 65_536; m (-1) 1 0 0 ]

let test_wire_corruption_detected () =
  (* flipping any single payload bit must fail the checksum *)
  let m =
    {
      Fabric.Wire.kind = Fabric.Wire.Task_word;
      src = 2;
      dst = 5;
      seq = 42;
      arg = 3;
      data = 0xBEEF;
    }
  in
  let p = Fabric.Wire.pack m in
  let survived = ref 0 in
  Array.iteri
    (fun w _ ->
      for bit = 0 to 50 do
        let p' = Array.copy p in
        p'.(w) <- p'.(w) lxor (1 lsl bit);
        match Fabric.Wire.unpack p' with
        | None -> ()
        | Some m' -> if m' = m then incr survived
      done)
    p;
  check int "no single-bit flip yields the original message" 0 !survived

let test_wire_arbitration_classes () =
  (* heartbeats outrank acks outrank data: liveness never starves *)
  let hb =
    { Fabric.Wire.kind = Fabric.Wire.Heartbeat; src = 15; dst = 63; seq = 0;
      arg = 0; data = 0 }
  and ack =
    { Fabric.Wire.kind = Fabric.Wire.Ack; src = 0; dst = 1; seq = 9; arg = 9;
      data = 0 }
  and data =
    { Fabric.Wire.kind = Fabric.Wire.Task_word; src = 0; dst = 1; seq = 1;
      arg = 0; data = 5 }
  in
  check bool "hb < ack" true (Fabric.Wire.frame_id hb < Fabric.Wire.frame_id ack);
  check bool "ack < data" true
    (Fabric.Wire.frame_id ack < Fabric.Wire.frame_id data)

(* ------------------------------------------------------------------ *)
(* Reliable delivery *)

let endpoint ?probe ~bus ~id ~seed () =
  let node = Fieldbus.Node.create ~bus ~id () in
  Fabric.Net.create ?probe ~node ~rng:(Util.Rng.create ~seed) ()

let test_net_in_order_under_drops () =
  let engine, bus = setup () in
  let a = endpoint ~bus ~id:0 ~seed:1 () in
  let b = endpoint ~bus ~id:1 ~seed:2 () in
  let got = ref [] in
  Fabric.Net.on_deliver b (fun m ->
      if m.Fabric.Wire.kind = Fabric.Wire.Task_word then
        got := m.Fabric.Wire.arg :: !got);
  (* every 3rd frame on the wire vanishes — data and acks alike *)
  let n = ref 0 in
  Fieldbus.Bus.set_fault bus
    (Some
       (fun f ->
         incr n;
         if !n mod 3 = 0 then None else Some f));
  for i = 0 to 9 do
    Fabric.Net.send a ~dst:1 ~kind:Fabric.Wire.Task_word ~arg:i ~data:(i * i)
  done;
  Sim.Engine.run_until engine (ms 500);
  check (list int) "all delivered, in order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !got);
  check bool "loss forced retries" true (Fabric.Net.retries a > 0);
  check int "no timeouts at one-in-3 loss" 0 (Fabric.Net.timeouts a);
  check (list int) "link not suspect" [] (Fabric.Net.suspects a)

let test_net_duplicate_suppression () =
  (* drop only acks: the data arrives, its ack dies, the retransmit is a
     duplicate that must be re-acked but not re-delivered *)
  let engine, bus = setup () in
  let a = endpoint ~bus ~id:0 ~seed:3 () in
  let b = endpoint ~bus ~id:1 ~seed:4 () in
  let got = ref 0 in
  Fabric.Net.on_deliver b (fun _ -> incr got);
  let killed = ref false in
  Fieldbus.Bus.set_fault bus
    (Some
       (fun f ->
         match Fabric.Wire.unpack f.Fieldbus.Bus.payload with
         | Some { Fabric.Wire.kind = Fabric.Wire.Ack; _ } when not !killed ->
           killed := true;
           None
         | _ -> Some f));
  Fabric.Net.send a ~dst:1 ~kind:Fabric.Wire.Commit ~arg:0 ~data:0;
  Sim.Engine.run_until engine (ms 100);
  check int "delivered exactly once" 1 !got;
  check bool "the lost ack forced a retry" true (Fabric.Net.retries a >= 1)

let test_net_retry_exhaustion_suspect () =
  let engine, bus = setup () in
  let a = endpoint ~bus ~id:0 ~seed:5 () in
  let b = endpoint ~bus ~id:1 ~seed:6 () in
  let got = ref 0 in
  Fabric.Net.on_deliver b (fun _ -> incr got);
  let suspected = ref [] in
  Fabric.Net.on_suspect a (fun dst -> suspected := dst :: !suspected);
  (* a hard partition: nothing from 0 reaches 1 *)
  Fieldbus.Bus.set_link_filter bus
    (Some (fun ~src ~dst -> not (src = 0 && dst = 1)));
  Fabric.Net.send a ~dst:1 ~kind:Fabric.Wire.Task_end ~arg:7 ~data:0;
  Sim.Engine.run_until engine (ms 500);
  check int "nothing delivered" 0 !got;
  check int "one timeout" 1 (Fabric.Net.timeouts a);
  check (list int) "destination suspect" [ 1 ] !suspected;
  check (list int) "suspect recorded" [ 1 ] (Fabric.Net.suspects a)

(* ------------------------------------------------------------------ *)
(* Cluster failover *)

let three_node_assignments () =
  [
    (0, [ task ~id:1 ~period_ms:20 ~wcet_ms:2; task ~id:2 ~period_ms:40 ~wcet_ms:4 ]);
    (1, [ task ~id:3 ~period_ms:20 ~wcet_ms:2; task ~id:4 ~period_ms:50 ~wcet_ms:5 ]);
    (2, [ task ~id:5 ~period_ms:25 ~wcet_ms:2 ]);
  ]

let run_crash_cluster ?probe () =
  let engine, bus = setup () in
  let cluster =
    Fabric.Cluster.create ?probe ~engine ~bus ~cost:Sim.Cost.m68040 ~spec:Emeralds.Sched.Edf
      ~seed:42 ~assignments:(three_node_assignments ()) ()
  in
  (match Fault.Plan.parse "node-crash:node=1,at=50ms" with
  | Ok plan -> Fabric.Cluster.install_plan cluster plan
  | Error e -> fail e);
  Fabric.Cluster.run cluster ~until:(ms 400);
  (cluster, Fabric.Cluster.score cluster ~horizon:(ms 400))

let test_crash_failover () =
  let cluster, score = run_crash_cluster () in
  check (list int) "node 1 is gone" [ 0; 2 ] (Fabric.Cluster.shards_alive cluster);
  check (list (pair int int)) "crash recorded" [ (1, ms 50) ]
    (Fabric.Cluster.crashes cluster);
  let migrated = List.map (fun (tid, _, _) -> tid) (Fabric.Cluster.migrations cluster) in
  check (list int) "both orphans re-admitted" [ 3; 4 ]
    (List.sort compare migrated);
  check (list int) "nothing shed" [] (Fabric.Cluster.shed cluster);
  check int "score agrees" 2 score.Fault.Report.n_migrated;
  check int "no misses after failover" 0 score.Fault.Report.n_e2e_misses;
  check bool "net score is clean" true (Fault.Report.net_ok score)

let test_failover_within_bound () =
  let cluster, score = run_crash_cluster () in
  let bound =
    match Fabric.Cluster.static_bound cluster with
    | Some b -> b
    | None -> fail "no static bound for a planned crash"
  in
  let observed =
    match Fabric.Cluster.failover_latency cluster with
    | Some l -> l
    | None -> fail "failover never completed"
  in
  let detect =
    match Fabric.Cluster.detect_latency cluster with
    | Some d -> d
    | None -> fail "crash never detected"
  in
  check bool "detection is positive" true (detect > 0);
  check bool
    (Printf.sprintf "observed %dns within bound %dns" observed bound)
    true (observed <= bound);
  check bool "score carries the same comparison" true
    (score.Fault.Report.n_failover_latency = Some observed
    && score.Fault.Report.n_failover_bound = Some bound)

let test_probe_bit_identity () =
  (* a probe-carrying run and a probe-free run of the same cluster must
     agree on every behavioural observable *)
  let _, plain = run_crash_cluster () in
  let trace = Sim.Trace.create () in
  let probe = Obs.Probe.create ~trace () in
  let cluster, probed = run_crash_cluster ~probe () in
  check bool "scores identical" true (plain = probed);
  check bool "probe saw net traffic" true
    (List.exists
       (fun (st : Sim.Trace.stamped) ->
         match st.entry with Sim.Trace.Net_frame _ -> true | _ -> false)
       (Sim.Trace.entries trace));
  ignore cluster

let test_overload_sheds () =
  (* node 1's survivor set cannot absorb a heavy orphan: Koren-Shasha
     drops it instead of breaking surviving deadlines *)
  let engine, bus = setup () in
  let assignments =
    [
      (0, [ task ~id:1 ~period_ms:10 ~wcet_ms:7 ]);
      (1, [ task ~id:2 ~period_ms:10 ~wcet_ms:7 ]);
    ]
  in
  let cluster =
    Fabric.Cluster.create ~engine ~bus ~cost:Sim.Cost.m68040 ~spec:Emeralds.Sched.Edf
      ~seed:7 ~assignments ()
  in
  (match Fault.Plan.parse "node-crash:node=1,at=40ms" with
  | Ok plan -> Fabric.Cluster.install_plan cluster plan
  | Error e -> fail e);
  Fabric.Cluster.run cluster ~until:(ms 300);
  check (list int) "orphan shed" [ 2 ] (Fabric.Cluster.shed cluster);
  check (list int) "nothing migrated" []
    (List.map (fun (tid, _, _) -> tid) (Fabric.Cluster.migrations cluster));
  let score = Fabric.Cluster.score cluster ~horizon:(ms 300) in
  check int "survivor keeps its deadlines" 0 score.Fault.Report.n_e2e_misses

let test_planned_migration () =
  let engine, bus = setup () in
  let cluster =
    Fabric.Cluster.create ~engine ~bus ~cost:Sim.Cost.m68040 ~spec:Emeralds.Sched.Edf
      ~seed:9 ~assignments:(three_node_assignments ()) ()
  in
  ignore (Sim.Engine.schedule engine ~at:(ms 30) (fun () ->
      check bool "migration accepted" true
        (Fabric.Cluster.migrate cluster ~tid:5 ~dst:0)));
  Fabric.Cluster.run cluster ~until:(ms 300);
  check bool "task 5 moved to node 0" true
    (List.exists
       (fun (tid, target, _) -> tid = 5 && target = 0)
       (Fabric.Cluster.migrations cluster));
  let score = Fabric.Cluster.score cluster ~horizon:(ms 300) in
  check int "no misses around the move" 0 score.Fault.Report.n_e2e_misses

let suite =
  [
    test_case "wire round-trip" `Quick test_wire_roundtrip;
    test_case "wire field validation" `Quick test_wire_field_validation;
    test_case "wire corruption detected" `Quick test_wire_corruption_detected;
    test_case "wire arbitration classes" `Quick test_wire_arbitration_classes;
    test_case "net in-order under drops" `Quick test_net_in_order_under_drops;
    test_case "net duplicate suppression" `Quick test_net_duplicate_suppression;
    test_case "net retry exhaustion" `Quick test_net_retry_exhaustion_suspect;
    test_case "crash failover" `Quick test_crash_failover;
    test_case "failover within bound" `Quick test_failover_within_bound;
    test_case "probe bit-identity" `Quick test_probe_bit_identity;
    test_case "overload sheds" `Quick test_overload_sheds;
    test_case "planned migration" `Quick test_planned_migration;
  ]
