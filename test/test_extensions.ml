(* Extensions beyond the core reproduction: counting semaphores,
   sporadic arrivals, the cyclic-executive baseline, and the ablation
   experiments' claims. *)

open Alcotest
open Emeralds

let ms = Model.Time.ms
let us = Model.Time.us

let task ?phase ?deadline id p c =
  Model.Task.make ?phase ?deadline ~id ~period:(ms p) ~wcet:(ms c) ()

let stat k tid =
  List.find (fun (s : Kernel.task_stats) -> s.tid = tid) (Kernel.stats k)

(* ------------------------------------------------------------------ *)
(* Counting semaphores *)

let test_counting_pool () =
  (* Three identical tasks share a 2-unit resource pool: at most two
     may hold units at once, the third waits. *)
  let pool = Objects.sem ~kind:Types.Standard ~initial:2 () in
  let in_pool = ref 0 and max_in_pool = ref 0 in
  let ts = Model.Taskset.of_list [ task 1 20 3; task 2 20 3; task 3 20 3 ] in
  (* each job holds a unit across a device delay, so holders overlap *)
  let programs _ =
    Program.
      [ acquire pool; compute (ms 1); delay (ms 2); compute (ms 1);
        release pool ]
  in
  let k = Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset:ts ~programs () in
  let scan (s : Sim.Trace.stamped) =
    match s.entry with
    | Sem_acquired _ ->
      incr in_pool;
      max_in_pool := max !max_in_pool !in_pool;
      if !in_pool > 2 then fail "pool over-subscribed"
    | Sem_released _ -> decr in_pool
    | _ -> ()
  in
  Kernel.run k ~until:(ms 200);
  List.iter scan (Sim.Trace.entries (Kernel.trace k));
  check int "both units were used" 2 !max_in_pool;
  List.iter
    (fun tid ->
      check int (Printf.sprintf "tau%d ran all jobs" tid) 10
        (stat k tid).jobs_completed)
    [ 1; 2; 3 ]

let test_counting_blocks_third () =
  let pool = Objects.sem ~kind:Types.Standard ~initial:2 () in
  let ts = Model.Taskset.of_list [ task 1 100 2; task 2 100 2; task 3 100 2 ] in
  let programs _ = Program.[ acquire pool; compute (ms 2); release pool ] in
  let k = Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset:ts ~programs () in
  (* single CPU serialises everything anyway; check blocking by peeking
     at 1ms: tau1 runs in its critical section, tau2/tau3 hold ready
     units conceptually... instead verify unit accounting directly *)
  Kernel.at k ~at:(ms 1) (fun () ->
      check int "one unit out at 1ms" 1 (2 - pool.Types.sem_value));
  Kernel.run k ~until:(ms 50);
  check int "all units returned" 2 pool.Types.sem_value

let test_sem_initial_validation () =
  check bool "initial >= 1" true
    (try
       ignore (Objects.sem ~initial:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Sporadic arrivals *)

let test_sporadic_trigger () =
  let ts =
    Model.Taskset.of_list
      [
        task 1 20 5;
        (* sporadic: phase beyond the horizon, 50ms relative deadline *)
        task ~phase:(ms 100_000) ~deadline:(ms 50) 2 1000 2;
      ]
  in
  let k = Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset:ts () in
  Kernel.trigger_job_at k ~at:(ms 7) ~tid:2;
  Kernel.trigger_job_at k ~at:(ms 43) ~tid:2;
  Kernel.run k ~until:(ms 100);
  let s = stat k 2 in
  check int "both sporadic jobs served" 2 s.jobs_completed;
  check int "no misses" 0 s.misses;
  (* deadline short (50ms) -> EDF serves it promptly even while tau1
     runs; response bounded by tau1 interference *)
  check bool "prompt response" true (s.max_response <= ms 10)

let test_sporadic_backlog () =
  let ts =
    Model.Taskset.of_list [ task ~phase:(ms 100_000) ~deadline:(ms 100) 1 1000 5 ]
  in
  let k = Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset:ts () in
  (* two arrivals 1ms apart: the second queues while the first runs *)
  Kernel.trigger_job_at k ~at:(ms 1) ~tid:1;
  Kernel.trigger_job_at k ~at:(ms 2) ~tid:1;
  Kernel.run k ~until:(ms 50);
  check int "both served back to back" 2 (stat k 1).jobs_completed

(* ------------------------------------------------------------------ *)
(* Cyclic executive *)

let harmonic =
  Model.Taskset.of_list [ task 1 5 1; task 2 10 2; task 3 20 4 ]

let test_cyclic_generation () =
  match Analysis.Cyclic.generate harmonic with
  | None -> fail "harmonic workload must be table-able"
  | Some table ->
    check int "major cycle = hyperperiod" (ms 20) table.major_cycle;
    check int "minor frame = gcd" (ms 5) table.minor_frame;
    check (float 1e-6) "slot utilization = workload utilization"
      (Model.Taskset.utilization harmonic)
      (Analysis.Cyclic.utilization_of_slots table);
    (* slots tile the major cycle exactly *)
    let covered =
      List.fold_left
        (fun acc (s : Analysis.Cyclic.slot) -> acc + s.duration)
        0 table.slots
    in
    check int "slots tile the cycle" (ms 20) covered

let test_cyclic_infeasible () =
  let overloaded = Model.Taskset.of_list [ task 1 5 4; task 2 10 4 ] in
  check bool "overload yields no table" true
    (Analysis.Cyclic.generate overloaded = None)

let test_cyclic_table_blowup () =
  (* the paper's memory bullet: co-prime periods explode the table *)
  let rows = Experiments.Exp_cyclic.table_sizes () in
  let get prefix =
    List.find
      (fun (r : Experiments.Exp_cyclic.size_row) ->
        String.length r.workload >= String.length prefix
        && String.sub r.workload 0 (String.length prefix) = prefix)
      rows
  in
  let harmonic = get "harmonic" and coprime = get "co-prime" in
  check bool "co-prime table is orders of magnitude larger" true
    (coprime.table_bytes > 50 * harmonic.table_bytes);
  check bool "priority scheduler needs only queue nodes" true
    (coprime.kernel_queue_bytes < 100)

let test_cyclic_aperiodic_response () =
  (* the paper's response bullet: slack-served aperiodics are far
     slower than preemptive scheduling *)
  let rows = Experiments.Exp_cyclic.aperiodic_response () in
  List.iter
    (fun (r : Experiments.Exp_cyclic.response_row) ->
      match r.cyclic_worst_ms with
      | Some cyclic ->
        check bool "cyclic at least 5x slower" true (cyclic > 5. *. r.csd_worst_ms)
      | None -> ())
    rows

(* ------------------------------------------------------------------ *)
(* Ablations *)

let test_cost_scaling_preserves_orderings () =
  List.iter
    (fun (r : Experiments.Exp_ablation.scale_row) ->
      check bool
        (Printf.sprintf "CSD-3 >= EDF at %.1fx" r.factor)
        true (r.csd3 >= r.edf -. 0.02);
      check bool
        (Printf.sprintf "CSD-3 >= RM at %.1fx" r.factor)
        true (r.csd3 >= r.rm -. 0.02))
    (Experiments.Exp_ablation.cost_scaling ~workloads:6 ());
  (* heavier costs, lower breakdowns *)
  match Experiments.Exp_ablation.cost_scaling ~workloads:6 () with
  | [ half; one; two ] ->
    check bool "EDF monotone in cost" true (half.edf > one.edf && one.edf > two.edf)
  | _ -> fail "expected three scale rows"

let test_pi_scheme_ablation () =
  match Experiments.Exp_ablation.pi_scheme () with
  | [ std; eme ] ->
    check bool "EMERALDS saves switches" true (eme.switches < std.switches);
    check bool "EMERALDS saves overhead" true (eme.overhead_us < std.overhead_us);
    check int "standard meets deadlines" 0 std.misses;
    check int "EMERALDS meets deadlines" 0 eme.misses
  | _ -> fail "expected two schemes"

let test_csd_taper () =
  let rows = Experiments.Exp_ablation.csd_taper ~workloads:6 () in
  let get x =
    (List.find (fun (r : Experiments.Exp_ablation.taper_row) -> r.queues = x) rows)
      .breakdown
  in
  check bool "CSD-3 beats CSD-2" true (get 3 > get 2);
  (* the marginal gain shrinks: x=6 adds less than x=3 did *)
  check bool "gains taper" true (get 6 -. get 5 < get 3 -. get 2);
  ignore us

(* ------------------------------------------------------------------ *)
(* Sensitivity analysis *)

let test_sensitivity_headroom () =
  let ts = Model.Taskset.of_list [ task 1 10 2; task 2 20 4 ] in
  let rooms =
    Analysis.Sensitivity.per_task ~cost:Sim.Cost.zero ~spec:Sched.Edf ts
  in
  List.iter
    (fun (h : Analysis.Sensitivity.headroom) ->
      check bool "headroom above 1x" true (h.scale >= 1.0);
      check bool "max wcet within deadline" true
        (h.max_wcet <= (Model.Taskset.get ts (h.task_id - 1)).deadline);
      (* growing to max_wcet must still be feasible *)
      let grown =
        Model.Taskset.map
          (fun (t : Model.Task.t) ->
            if t.id = h.task_id then Model.Task.with_wcet t h.max_wcet else t)
          ts
      in
      check bool "max wcet is feasible" true
        (Analysis.Feasibility.feasible ~cost:Sim.Cost.zero ~spec:Sched.Edf grown))
    rooms;
  (* U = 0.4: tau1 can grow until U hits 1.0 -> c1_max = (1 - 0.2) * 10 = 8 *)
  let h1 = List.hd rooms in
  check bool "tau1 headroom near 4x" true (h1.scale > 3.9 && h1.scale <= 4.01)

let test_sensitivity_infeasible () =
  let ts = Model.Taskset.of_list [ task 1 10 8; task 2 20 8 ] in
  let rooms =
    Analysis.Sensitivity.per_task ~cost:Sim.Cost.zero ~spec:Sched.Rm ts
  in
  List.iter
    (fun (h : Analysis.Sensitivity.headroom) ->
      check (float 1e-9) "infeasible set has zero headroom" 0.0 h.scale)
    rooms

let test_sensitivity_bottleneck () =
  let ts = Model.Taskset.of_list [ task 1 10 2; task 2 100 60 ] in
  match Analysis.Sensitivity.bottleneck ~cost:Sim.Cost.zero ~spec:Sched.Edf ts with
  | Some b -> check int "the loaded task is the bottleneck" 2 b.task_id
  | None -> fail "expected a bottleneck"

(* ------------------------------------------------------------------ *)
(* Task-set spec files *)

let test_spec_file_roundtrip () =
  let text =
    "# engine\n\
     task 1 period=5ms wcet=900us name=injection\n\
     task 2 period=20ms wcet=2.5ms deadline=15ms blocking=1\n\
     \n\
     task 3 period=1s wcet=15ms phase=100ms # trailing comment\n"
  in
  match Workload.Spec_file.parse text with
  | Error msg -> fail msg
  | Ok ts ->
    check int "three tasks" 3 (Model.Taskset.size ts);
    let t1 = Model.Taskset.get ts 0 in
    check int "t1 period" (ms 5) t1.period;
    check int "t1 wcet" (us 900) t1.wcet;
    check string "t1 name" "injection" t1.name;
    let t2 = Model.Taskset.get ts 1 in
    check int "t2 deadline" (ms 15) t2.deadline;
    check int "t2 blocking" 1 t2.blocking_calls;
    let t3 = Model.Taskset.get ts 2 in
    check int "t3 phase" (ms 100) t3.phase;
    (* round trip *)
    (match Workload.Spec_file.parse (Workload.Spec_file.to_string ts) with
    | Ok ts2 ->
      check int "round-trip size" 3 (Model.Taskset.size ts2);
      Array.iteri
        (fun i (t : Model.Task.t) ->
          let t' = Model.Taskset.get ts2 i in
          check int "period survives" t.period t'.period;
          check int "wcet survives" t.wcet t'.wcet;
          check int "deadline survives" t.deadline t'.deadline)
        (Model.Taskset.tasks ts)
    | Error msg -> fail msg)

let test_spec_file_process_attr () =
  let text = "task 1 period=10ms wcet=1ms process=7\ntask 2 period=20ms wcet=1ms process=7\n" in
  match Workload.Spec_file.parse text with
  | Error msg -> fail msg
  | Ok ts ->
    check int "t1 process" 7 (Model.Taskset.get ts 0).process;
    check int "t2 process" 7 (Model.Taskset.get ts 1).process;
    (* survives the roundtrip *)
    (match Workload.Spec_file.parse (Workload.Spec_file.to_string ts) with
    | Ok ts2 -> check int "roundtrip process" 7 (Model.Taskset.get ts2 0).process
    | Error msg -> fail msg)

let test_spec_file_errors () =
  let expect_error text =
    match Workload.Spec_file.parse text with
    | Error _ -> ()
    | Ok _ -> fail ("expected a parse error for: " ^ text)
  in
  expect_error "";
  expect_error "task 1 wcet=1ms\n";
  expect_error "task 1 period=10ms\n";
  expect_error "task x period=10ms wcet=1ms\n";
  expect_error "task 1 period=10ms wcet=20ms\n" (* wcet > deadline *);
  expect_error "task 1 period=10ms wcet=1ms bogus=3\n";
  expect_error "job 1 period=10ms wcet=1ms\n";
  expect_error "task 1 period=-10ms wcet=1ms\n"

let test_duration_parsing () =
  let ok s expected =
    match Workload.Spec_file.duration_of_string s with
    | Ok v -> check int s expected v
    | Error msg -> fail msg
  in
  ok "250ns" 250;
  ok "1.5us" 1_500;
  ok "2ms" (ms 2);
  ok "0.5s" (ms 500);
  ok "12345" 12_345;
  check bool "garbage rejected" true
    (Result.is_error (Workload.Spec_file.duration_of_string "fast"))

(* ------------------------------------------------------------------ *)
(* Protection domains *)

let test_process_switch_cost () =
  (* identical workloads; one groups every thread into a single
     process, the other isolates each — the isolated build pays an
     address-space switch on every context switch *)
  let build ~shared =
    let ts =
      Model.Taskset.of_list
        (List.init 4 (fun i ->
             Model.Task.make
               ?process:(if shared then Some 1 else None)
               ~id:(i + 1)
               ~period:(ms (10 + (5 * i)))
               ~wcet:(ms 2) ()))
    in
    let k = Kernel.create ~cost:Sim.Cost.m68040 ~spec:Sched.Edf ~taskset:ts () in
    Kernel.run k ~until:(ms 500);
    Kernel.trace k
  in
  let shared = build ~shared:true and isolated = build ~shared:false in
  check int "same schedule" (Sim.Trace.context_switches shared)
    (Sim.Trace.context_switches isolated);
  check bool "isolation costs address-space switches" true
    (Sim.Trace.overhead_total isolated > Sim.Trace.overhead_total shared);
  let as_cost trace =
    match List.assoc_opt "switch.as" (Sim.Trace.overhead_by_category trace) with
    | Some c -> c
    | None -> 0
  in
  check int "no domain crossings in one process" 0 (as_cost shared);
  check bool "every cross-process switch charged" true (as_cost isolated > 0)

(* ------------------------------------------------------------------ *)
(* IPC freshness *)

let test_ipc_freshness () =
  match Experiments.Exp_ipc.measure_freshness () with
  | [ state; mailbox ] ->
    check bool "state data stays fresh (< one writer period + jitter)" true
      (state.max_age_ms < 11.0);
    check bool "mailbox data goes stale" true
      (mailbox.mean_age_ms > 5.0 *. state.mean_age_ms)
  | _ -> fail "expected two mechanisms"

(* ------------------------------------------------------------------ *)
(* Timer-tick quantization *)

let test_tick_quantizes_releases () =
  let ts = Model.Taskset.of_list [ task 1 10 1 ] in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~tick:(ms 4) ~spec:Sched.Edf ~taskset:ts ()
  in
  Kernel.run k ~until:(ms 40);
  let releases =
    List.filter_map
      (fun (s : Sim.Trace.stamped) ->
        match s.entry with Job_release _ -> Some s.at | _ -> None)
      (Sim.Trace.entries (Kernel.trace k))
  in
  (* nominal 0,10,20,30,40 -> tick-4 boundaries 0,12,20,32,40 *)
  check (list int) "releases on tick boundaries"
    [ 0; ms 12; ms 20; ms 32; ms 40 ]
    releases

let test_tick_quantizes_delays () =
  let ts = Model.Taskset.of_list [ task 1 100 1 ] in
  let programs _ = Program.[ delay (ms 5); compute (ms 1) ] in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~tick:(ms 4) ~spec:Sched.Edf ~taskset:ts
      ~programs ()
  in
  Kernel.run k ~until:(ms 100);
  (* wake deferred from 5ms to the 8ms boundary -> completion at 9ms *)
  check int "delay rounded up to the tick" (ms 9) (stat k 1).max_response

let test_tick_validation () =
  let ts = Model.Taskset.of_list [ task 1 10 1 ] in
  check bool "non-positive tick rejected" true
    (try
       ignore
         (Kernel.create ~cost:Sim.Cost.zero ~tick:0 ~spec:Sched.Edf
            ~taskset:ts ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Deadline-monotonic priority assignment *)

let test_dm_beats_rm_on_constrained_deadlines () =
  (* tau1 has a long period but a tight deadline: RM ranks it last and
     it misses; DM ranks it first and all is well. *)
  let ts =
    Model.Taskset.of_list
      [
        Model.Task.make ~id:1 ~period:(ms 100) ~deadline:(ms 4) ~wcet:(ms 2) ();
        Model.Task.make ~id:2 ~period:(ms 10) ~wcet:(ms 3) ();
        Model.Task.make ~id:3 ~period:(ms 20) ~wcet:(ms 4) ();
      ]
  in
  let run order =
    let k =
      Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~priority_order:order
        ~taskset:ts ()
    in
    Kernel.run k ~until:(ms 100);
    (stat k 1).misses
  in
  check bool "RM misses the tight deadline" true (run `Rm > 0);
  check int "DM meets it" 0 (run `Dm)

(* ------------------------------------------------------------------ *)
(* Blocking-aware analysis *)

let test_blocking_terms () =
  (* ranks 0,1,2; sem A shared by ranks 0 and 2; sem B only rank 1&2 *)
  let css =
    Analysis.Blocking.
      [
        { task_rank = 0; sem = 1; duration = 100; nested = []; chained = [] };
        { task_rank = 2; sem = 1; duration = 700; nested = []; chained = [] };
        { task_rank = 1; sem = 2; duration = 300; nested = []; chained = [] };
        { task_rank = 2; sem = 2; duration = 400; nested = []; chained = [] };
      ]
  in
  let b = Analysis.Blocking.blocking_terms ~n:3 css in
  (* rank 0: lower tasks' CSs on sems used at/above rank 0: sem 1 by
     rank 2 (700).  sem 2 is not used at rank 0, so 400 doesn't count. *)
  check int "B0" 700 b.(0);
  (* rank 1: sem1(rank2,700) blocks it? sem 1 used at rank 0 <= 1: yes;
     sem2(rank2,400) used at rank 1: yes -> max 700 *)
  check int "B1" 700 b.(1);
  (* rank 2: nothing lower *)
  check int "B2" 0 b.(2)

let test_blocking_rta () =
  let tasks = [| (ms 10, ms 10, ms 2); (ms 20, ms 20, ms 4) |] in
  let no_blocking = [| 0; 0 |] in
  let heavy = [| ms 9; 0 |] in
  check bool "feasible without blocking" true
    (Analysis.Blocking.feasible tasks ~blocking:no_blocking);
  check bool "infeasible with a 9ms blocking term" false
    (Analysis.Blocking.feasible tasks ~blocking:heavy);
  check (option int) "response includes blocking"
    (Some (ms 5))
    (Analysis.Blocking.response_time ~tasks ~blocking:[| ms 3; 0 |] 0)

(* ------------------------------------------------------------------ *)
(* Condition variables *)

let test_condvar_object () =
  let mutex = Objects.sem ~kind:Types.Emeralds () in
  let cv = Condvar.create ~mutex () in
  let ts =
    Model.Taskset.of_list [ task 1 50 2; task ~phase:(ms 10) 2 50 2 ]
  in
  let programs (t : Model.Task.t) =
    let open Program in
    if t.id = 1 then
      (acquire (Condvar.mutex cv) :: Condvar.wait cv)
      @ [ compute (ms 1); release (Condvar.mutex cv) ]
    else
      [ acquire mutex; compute (ms 1); Condvar.signal cv; release mutex ]
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset:ts ~programs ()
  in
  Kernel.run k ~until:(ms 50);
  check int "waiter completed" 1 (stat k 1).jobs_completed;
  check int "signaller completed" 1 (stat k 2).jobs_completed

let test_condvar_broadcast () =
  let mutex = Objects.sem () in
  let cv = Condvar.create ~mutex () in
  let ts =
    Model.Taskset.of_list
      [ task 1 100 1; task 2 100 1; task ~phase:(ms 5) 3 100 1 ]
  in
  let programs (t : Model.Task.t) =
    let open Program in
    if t.id = 3 then
      [ acquire mutex; Condvar.broadcast cv; release mutex; compute (ms 1) ]
    else
      (acquire mutex :: Condvar.wait cv) @ [ release mutex ]
  in
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset:ts ~programs ()
  in
  Kernel.run k ~until:(ms 100);
  List.iter
    (fun tid ->
      check int (Printf.sprintf "tau%d woke" tid) 1 (stat k tid).jobs_completed)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* User-level device drivers *)

let test_driver_pattern () =
  let captured = ref 0 in
  let ts =
    Model.Taskset.of_list
      [ Model.Task.make ~id:1 ~period:(ms 10) ~deadline:(ms 50) ~wcet:(ms 1) () ]
  in
  let k = Kernel.create ~cost:Sim.Cost.m68040 ~spec:Sched.Edf ~taskset:ts () in
  let drv = Driver.attach k ~irq:9 ~capture:(fun () -> incr captured) () in
  let t1 = Kernel.tcb k ~tid:1 in
  t1.Types.program <-
    [| Driver.wait_for_interrupt drv; Program.compute (ms 1) |];
  t1.Types.hints <- Program.derive_hints t1.Types.program;
  List.iter (fun t -> Driver.raise_at drv ~at:(ms t)) [ 3; 13; 23 ];
  Kernel.run k ~until:(ms 60);
  check int "three interrupts" 3 (Driver.interrupts_serviced drv);
  check int "capture ran in interrupt context" 3 !captured;
  check int "driver thread served each" 3 (stat k 1).jobs_completed

(* ------------------------------------------------------------------ *)
(* Fieldbus nodes *)

let test_node_glue () =
  let engine = Sim.Engine.create () in
  let bus = Fieldbus.Bus.create ~engine ~bitrate_bps:1_000_000 () in
  let sensor = Fieldbus.Node.create ~bus ~id:0 () in
  let ctrl_node = Fieldbus.Node.create ~bus ~id:1 () in
  let ts =
    Model.Taskset.of_list
      [ Model.Task.make ~id:1 ~period:(ms 10) ~deadline:(ms 50) ~wcet:(ms 1) () ]
  in
  let k = Kernel.create ~engine ~cost:Sim.Cost.zero ~spec:Sched.Edf ~taskset:ts () in
  let sample = State_msg.create ~depth:3 ~words:2 in
  let drv = Driver.attach k ~irq:2 () in
  let t1 = Kernel.tcb k ~tid:1 in
  t1.Types.program <-
    [| Driver.wait_for_interrupt drv; Program.state_read sample;
       Program.compute (ms 1) |];
  t1.Types.hints <- Program.derive_hints t1.Types.program;
  Fieldbus.Node.deliver_to_kernel ctrl_node ~kernel:k ~irq:2
    ~accept:(fun f -> f.Fieldbus.Bus.frame_id = 0x11)
    ~capture:(fun f -> State_msg.write sample f.Fieldbus.Bus.payload)
    ();
  Fieldbus.Node.send_at sensor ~at:(ms 2) ~frame_id:0x11 [| 41; 42 |];
  Fieldbus.Node.send_at sensor ~at:(ms 12) ~frame_id:0x99 [| 0; 0 |];
  Fieldbus.Node.send_at sensor ~at:(ms 22) ~frame_id:0x11 [| 43; 44 |];
  Sim.Engine.run_until engine (ms 60);
  check int "only matching frames delivered" 2 (Driver.interrupts_serviced drv);
  check int "sensor sent three" 3 (Fieldbus.Node.frames_sent sensor);
  check (array int) "latest payload published" [| 43; 44 |] (State_msg.read sample);
  check int "driver thread served both" 2 (stat k 1).jobs_completed

let suite =
  [
    test_case "counting sem: resource pool" `Quick test_counting_pool;
    test_case "counting sem: unit accounting" `Quick test_counting_blocks_third;
    test_case "counting sem: validation" `Quick test_sem_initial_validation;
    test_case "sporadic: trigger" `Quick test_sporadic_trigger;
    test_case "sporadic: backlog" `Quick test_sporadic_backlog;
    test_case "cyclic: table generation" `Quick test_cyclic_generation;
    test_case "cyclic: infeasible workloads" `Quick test_cyclic_infeasible;
    test_case "cyclic: co-prime table blow-up" `Quick test_cyclic_table_blowup;
    test_case "cyclic: aperiodic response gap" `Quick test_cyclic_aperiodic_response;
    test_case "ablation: cost scaling" `Slow test_cost_scaling_preserves_orderings;
    test_case "ablation: PI scheme end to end" `Quick test_pi_scheme_ablation;
    test_case "ablation: CSD-x taper" `Slow test_csd_taper;
    test_case "sensitivity: headroom" `Quick test_sensitivity_headroom;
    test_case "sensitivity: infeasible" `Quick test_sensitivity_infeasible;
    test_case "sensitivity: bottleneck" `Quick test_sensitivity_bottleneck;
    test_case "spec file: roundtrip" `Quick test_spec_file_roundtrip;
    test_case "spec file: errors" `Quick test_spec_file_errors;
    test_case "spec file: process attribute" `Quick test_spec_file_process_attr;
    test_case "spec file: durations" `Quick test_duration_parsing;
    test_case "protection domains" `Quick test_process_switch_cost;
    test_case "ipc freshness" `Quick test_ipc_freshness;
    test_case "tick: quantized releases" `Quick test_tick_quantizes_releases;
    test_case "tick: quantized delays" `Quick test_tick_quantizes_delays;
    test_case "tick: validation" `Quick test_tick_validation;
    test_case "deadline-monotonic ordering" `Quick
      test_dm_beats_rm_on_constrained_deadlines;
    test_case "blocking terms" `Quick test_blocking_terms;
    test_case "blocking-aware RTA" `Quick test_blocking_rta;
    test_case "condvar object" `Quick test_condvar_object;
    test_case "condvar broadcast" `Quick test_condvar_broadcast;
    test_case "user-level driver pattern" `Quick test_driver_pattern;
    test_case "fieldbus node glue" `Quick test_node_glue;
  ]
