(* Tests for the discrete-event engine, trace, and cost model. *)

open Alcotest

let ms = Model.Time.ms
let us = Model.Time.us

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let note x () = log := x :: !log in
  ignore (Sim.Engine.schedule e ~at:(ms 3) (note "c"));
  ignore (Sim.Engine.schedule e ~at:(ms 1) (note "a"));
  ignore (Sim.Engine.schedule e ~at:(ms 2) (note "b"));
  check bool "queue drained" true (Sim.Engine.run_bounded e ~max_events:1_000);
  check (list string) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check int "clock at last event" (ms 3) (Sim.Engine.now e)

let test_engine_fifo_ties () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~at:(ms 1) (fun () -> log := i :: !log))
  done;
  check bool "queue drained" true (Sim.Engine.run_bounded e ~max_events:1_000);
  check (list int) "same-time events in schedule order" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~at:(ms 1) (fun () -> fired := true) in
  check bool "cancel succeeds" true (Sim.Engine.cancel e h);
  check bool "cancel twice fails" false (Sim.Engine.cancel e h);
  check bool "queue drained" true (Sim.Engine.run_bounded e ~max_events:1_000);
  check bool "cancelled event did not fire" false !fired

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec periodic t =
    ignore
      (Sim.Engine.schedule e ~at:t (fun () ->
           incr count;
           periodic (t + ms 10)))
  in
  periodic 0;
  Sim.Engine.run_until e (ms 35);
  check int "fires within horizon only" 4 !count;
  check int "clock set to horizon" (ms 35) (Sim.Engine.now e);
  check bool "future event still queued" true (Sim.Engine.pending e > 0)

let test_engine_schedule_during_event () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~at:(ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.Engine.schedule e ~at:(ms 1) (fun () ->
                log := "inner-same-time" :: !log))));
  check bool "queue drained" true (Sim.Engine.run_bounded e ~max_events:1_000);
  check (list string) "nested same-time event fires" [ "outer"; "inner-same-time" ]
    (List.rev !log)

let test_engine_run_bounded () =
  (* a self-perpetuating event pattern must fail the bound, not hang *)
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let rec forever t =
    ignore
      (Sim.Engine.schedule e ~at:t (fun () ->
           incr fired;
           forever (t + ms 1)))
  in
  forever 0;
  check bool "bound reached before the queue drains" false
    (Sim.Engine.run_bounded e ~max_events:25);
  check int "exactly max_events fired" 25 !fired;
  check bool "negative bound rejected" true
    (try
       ignore (Sim.Engine.run_bounded e ~max_events:(-1));
       false
     with Invalid_argument _ -> true)

let test_engine_past_rejected () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~at:(ms 2) (fun () -> ()));
  check bool "queue drained" true (Sim.Engine.run_bounded e ~max_events:1_000);
  check bool "scheduling in the past raises" true
    (try
       ignore (Sim.Engine.schedule e ~at:(ms 1) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_counters () =
  let tr = Sim.Trace.create () in
  Sim.Trace.emit tr ~at:0 (Sim.Trace.Context_switch { from_tid = None; to_tid = Some 1 });
  Sim.Trace.set_outgoing_ready tr true;
  Sim.Trace.emit tr ~at:1 (Sim.Trace.Context_switch { from_tid = Some 1; to_tid = Some 2 });
  Sim.Trace.emit tr ~at:2 (Sim.Trace.Deadline_miss { tid = 1; job = 1; lateness = 0 });
  Sim.Trace.emit tr ~at:3 (Sim.Trace.Overhead { category = Ovh_pi; cost = us 2 });
  Sim.Trace.emit tr ~at:3 (Sim.Trace.Overhead { category = Ovh_pi; cost = us 3 });
  Sim.Trace.emit tr ~at:3 (Sim.Trace.Overhead { category = Ovh_switch; cost = us 1 });
  check int "switches" 2 (Sim.Trace.context_switches tr);
  check int "preemptions" 1 (Sim.Trace.preemptions tr);
  check int "misses" 1 (Sim.Trace.deadline_misses tr);
  check int "overhead total" (us 6) (Sim.Trace.overhead_total tr);
  check (list (pair string int)) "by category"
    [ ("pi", us 5); ("switch", us 1) ]
    (Sim.Trace.overhead_by_category tr);
  check int "entries kept" 6 (List.length (Sim.Trace.entries tr));
  (match Sim.Trace.first_miss tr with
  | Some { at; _ } -> check int "first miss time" 2 at
  | None -> fail "miss recorded");
  Sim.Trace.add_busy tr (ms 1);
  check int "busy" (ms 1) (Sim.Trace.busy_time tr)

let test_trace_no_entries_mode () =
  let tr = Sim.Trace.create ~keep_entries:false () in
  Sim.Trace.emit tr ~at:0 (Sim.Trace.Deadline_miss { tid = 1; job = 1; lateness = 0 });
  check int "counter still works" 1 (Sim.Trace.deadline_misses tr);
  check int "no entries retained" 0 (List.length (Sim.Trace.entries tr))

(* ------------------------------------------------------------------ *)
(* Cost model *)

let test_cost_table1 () =
  let c = Sim.Cost.m68040 in
  check int "edf t_b" (Model.Time.of_us_f 1.6) c.edf_tb;
  check int "edf t_s n=15" (Model.Time.of_us_f 4.95) (Sim.Cost.edf_ts c ~n:15);
  check int "rm t_b n=10" (Model.Time.of_us_f 4.6) (Sim.Cost.rm_tb c ~scanned:10);
  check int "rm t_s" (Model.Time.of_us_f 0.6) c.rm_ts;
  (* heap at n=15: ceil(log2 16) = 4 *)
  check int "heap t_b n=15" (Model.Time.of_us_f (0.4 +. (2.8 *. 4.)))
    (Sim.Cost.heap_tb c ~n:15);
  check int "heap t_u n=15" (Model.Time.of_us_f (1.9 +. (0.7 *. 4.)))
    (Sim.Cost.heap_tu c ~n:15);
  check int "csd parse x=3" (Model.Time.of_us_f 1.65) (Sim.Cost.csd_parse c ~queues:3)

let test_cost_zero_and_scale () =
  check int "zero context switch" 0 Sim.Cost.zero.context_switch;
  check int "zero edf_ts" 0 (Sim.Cost.edf_ts Sim.Cost.zero ~n:50);
  let doubled = Sim.Cost.scale Sim.Cost.m68040 2.0 in
  check int "scaled switch" (2 * Sim.Cost.m68040.context_switch)
    doubled.context_switch;
  check int "scaled edf slope" (2 * Sim.Cost.m68040.edf_ts_per_task)
    doubled.edf_ts_per_task

let test_cost_ipc () =
  let c = Sim.Cost.m68040 in
  check bool "mailbox grows with words" true
    (Sim.Cost.mailbox_copy c ~words:64 > Sim.Cost.mailbox_copy c ~words:4);
  check bool "state write cheaper than mailbox" true
    (Sim.Cost.state_write c ~words:16 < Sim.Cost.mailbox_copy c ~words:16);
  check int "pi standard fp" (Model.Time.of_us_f (1.0 +. (0.36 *. 10.)))
    (Sim.Cost.pi_fp_standard c ~scanned:10)

let test_trace_csv () =
  let tr = Sim.Trace.create () in
  Sim.Trace.emit tr ~at:(ms 1)
    (Sim.Trace.Job_release { tid = 3; job = 1; deadline = ms 5 });
  Sim.Trace.emit tr ~at:(ms 2)
    (Sim.Trace.Context_switch { from_tid = None; to_tid = Some 3 });
  let csv = Sim.Trace.to_csv tr in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check int "header + 2 rows" 3 (List.length lines);
  check string "header" "time_ns,kind,tid,detail" (List.hd lines);
  check bool "release row present" true
    (List.exists
       (fun l -> l = Printf.sprintf "%d,release,3,job=1 deadline=%d" (ms 1) (ms 5))
       lines)

(* One witness per constructor; keep in sync with Sim.Trace.entry (the
   count check below trips when a constructor is added here, and the
   compiler's exhaustiveness warning in Trace.emit / Metrics.observe
   trips when one is added there). *)
let every_entry : Sim.Trace.entry list =
  [
    Job_release { tid = 1; job = 1; deadline = ms 5 };
    Job_complete { tid = 1; job = 1; response = ms 2 };
    Deadline_miss { tid = 1; job = 1; lateness = us 3 };
    Context_switch { from_tid = Some 1; to_tid = None };
    Thread_block { tid = 1; reason = "sem" };
    Thread_unblock { tid = 1 };
    Sem_acquired { tid = 1; sem = 2 };
    Sem_blocked { tid = 1; sem = 2 };
    Sem_released { tid = 1; sem = 2 };
    Priority_inherit { holder = 1; from_tid = 2 };
    Priority_restore { holder = 1 };
    Msg_sent { tid = 1; mailbox = 0; words = 4 };
    Msg_received { tid = 1; mailbox = 0; words = 4; queued_for = us 7 };
    State_written { tid = 1; state = 0; seq = 1 };
    State_read { tid = 1; state = 0; seq = 1 };
    Interrupt { irq = 9 };
    Overhead { category = Ovh_sched_select; cost = us 1 };
    Budget_overrun { tid = 1; job = 1; used = us 9; budget = us 8 };
    Job_killed { tid = 1; job = 1 };
    Job_shed { tid = 1; job = 2; reason = "skip-over" };
    Net_frame { node = 1; dir = "tx"; frame_id = 65; words = 2 };
    Net_retry { node = 1; seq = 3; attempt = 2 };
    Net_timeout { node = 1; seq = 3 };
    Net_arb { frame_id = 65; delay = us 79 };
    Note "marker";
  ]

let test_trace_exhaustive_render () =
  check int "witness per constructor" 25 (List.length every_entry);
  let tr = Sim.Trace.create () in
  List.iteri (fun i e -> Sim.Trace.emit tr ~at:(us i) e) every_entry;
  (* to_csv: one data row per entry, each with a non-empty kind *)
  let csv_lines = String.split_on_char '\n' (String.trim (Sim.Trace.to_csv tr)) in
  check int "csv rows" (List.length every_entry + 1) (List.length csv_lines);
  let kinds =
    List.map
      (fun e ->
        let k, _, _ = Sim.Trace.csv_fields e in
        check bool "csv kind non-empty" true (k <> "");
        k)
      every_entry
  in
  check int "csv kinds distinct" (List.length every_entry)
    (List.length (List.sort_uniq compare kinds));
  (* pp_stamped: every constructor renders as a distinct line *)
  let rendered =
    List.map
      (fun e ->
        let s = Format.asprintf "%a" Sim.Trace.pp_stamped { at = 0; entry = e } in
        check bool "pp_stamped non-empty" true (String.length s > 10);
        s)
      every_entry
  in
  check int "pp_stamped lines distinct" (List.length every_entry)
    (List.length (List.sort_uniq compare rendered));
  (* pp_timeline: the PR 4 enforcement kinds must show up *)
  let timeline = Format.asprintf "%a" Sim.Trace.pp_timeline tr in
  let contains needle =
    let nl = String.length needle and hl = String.length timeline in
    let rec go i =
      i + nl <= hl && (String.sub timeline i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      check bool (needle ^ " in timeline") true (contains needle))
    [ "OVERRUN"; "KILL"; "SHED"; "MISS"; "release"; "complete"; "switch" ]

let test_trace_responses_degraded () =
  let exact = [ 120_000; 45_000; 45_000; 3_000_000; 7 ] in
  let feed tr =
    List.iteri
      (fun i r ->
        Sim.Trace.emit tr ~at:(ms i)
          (Sim.Trace.Job_complete { tid = 4; job = i; response = r }))
      exact
  in
  (* keep_entries:true — exact chronological series, as before *)
  let kept = Sim.Trace.create () in
  feed kept;
  check (list int) "kept: exact order" exact (Sim.Trace.responses kept ~tid:4);
  (* keep_entries:false — no longer []: bucketed values, same length *)
  let degraded = Sim.Trace.create ~keep_entries:false () in
  feed degraded;
  let got = Sim.Trace.responses degraded ~tid:4 in
  check int "degraded: same count" (List.length exact) (List.length got);
  check (list int) "degraded: sorted" (List.sort compare got) got;
  List.iter2
    (fun e g ->
      let tol = 2.0 /. float_of_int Util.Hist.sub_buckets in
      if abs_float (float_of_int (g - e)) > (tol *. float_of_int e) +. 1.0 then
        Alcotest.failf "degraded response %d too far from exact %d" g e)
    (List.sort compare exact)
    got;
  check (list int) "degraded: absent task still []" []
    (Sim.Trace.responses degraded ~tid:9);
  (* response_hist agrees across modes up to bucketing *)
  let hk = Sim.Trace.response_hist kept ~tid:4 in
  let hd = Sim.Trace.response_hist degraded ~tid:4 in
  check int "hist counts agree" (Util.Hist.count hk) (Util.Hist.count hd);
  check int "hist max exact in both" (Util.Hist.max_value hk)
    (Util.Hist.max_value hd)

let suite =
  [
    test_case "engine: time order" `Quick test_engine_order;
    test_case "trace: every constructor renders" `Quick
      test_trace_exhaustive_render;
    test_case "trace: responses degrade gracefully" `Quick
      test_trace_responses_degraded;
    test_case "trace: csv export" `Quick test_trace_csv;
    test_case "engine: FIFO ties" `Quick test_engine_fifo_ties;
    test_case "engine: cancel" `Quick test_engine_cancel;
    test_case "engine: run_until" `Quick test_engine_run_until;
    test_case "engine: nested scheduling" `Quick test_engine_schedule_during_event;
    test_case "engine: run_bounded" `Quick test_engine_run_bounded;
    test_case "engine: past rejected" `Quick test_engine_past_rejected;
    test_case "trace: counters" `Quick test_trace_counters;
    test_case "trace: counters-only mode" `Quick test_trace_no_entries_mode;
    test_case "cost: Table 1 values" `Quick test_cost_table1;
    test_case "cost: zero and scale" `Quick test_cost_zero_and_scale;
    test_case "cost: ipc" `Quick test_cost_ipc;
  ]
