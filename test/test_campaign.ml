(* The differential soundness campaign (lib/campaign): oracle lattice
   evaluation, the driver loop, falsification shrinking, the SARIF
   report, and — most importantly — replay of the generated scenarios
   whose falsifications root-caused real kernel and analysis bugs. *)

open Alcotest

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- oracle vocabulary ---------------------------------------------- *)

let test_oracle_names () =
  List.iter
    (fun k ->
      check bool "name round-trips" true
        (Campaign.Oracle.of_string (Campaign.Oracle.name k) = Some k))
    Campaign.Oracle.all;
  check bool "unknown name rejected" true
    (Campaign.Oracle.of_string "bogus" = None);
  (match Campaign.Oracle.parse_list "all" with
  | Ok l -> check int "all selects every oracle" (List.length Campaign.Oracle.all) (List.length l)
  | Error e -> failf "parse_list all: %s" e);
  (match Campaign.Oracle.parse_list "rta-sim,ident" with
  | Ok [ a; b ] ->
    check string "first" "rta-sim" (Campaign.Oracle.name a);
    check string "second" "ident" (Campaign.Oracle.name b)
  | Ok _ | Error _ -> fail "two-oracle list");
  match Campaign.Oracle.parse_list "rta-sim,nope" with
  | Error _ -> ()
  | Ok _ -> fail "bad oracle accepted"

(* --- falsification replay ------------------------------------------- *)

(* The seeded 10k campaign ([--seed 42]) falsified these six scenarios
   before this PR's fixes: gen-4918 hit the dispatch stall (a thread
   that blocked and was re-selected before its dispatch event fired
   never regained [Running]); gen-2468 hit the missing deadline
   re-inheritance at semaphore hand-off (model-checked PI violation);
   gen-2515/6758/7463/7568 hit the under-counted blocking of
   back-to-back critical-section chains (RTA bound below simulated
   response).  All must stay clean under the full oracle lattice. *)
let test_replay_falsified () =
  let specs = Workload.Generator.scenario_specs ~seed:42 ~count:7569 () in
  List.iter
    (fun idx ->
      let spec = List.nth specs idx in
      let e = Campaign.Eval.run ~index:idx spec in
      List.iter
        (fun (f : Campaign.Oracle.finding) ->
          failf "gen-%d regressed: %s %s" idx
            (Campaign.Oracle.name f.oracle)
            f.message)
        e.findings)
    [ 2468; 2515; 4918; 6758; 7463; 7568 ]

(* --- the driver loop ------------------------------------------------- *)

let small_run =
  lazy
    (Campaign.Driver.run
       { Campaign.Driver.default_config with seed = 7; count = 25 })

let test_small_campaign_clean () =
  let s = Lazy.force small_run in
  check int "all scenarios evaluated" 25 s.scenarios;
  check int "no falsifications" 0 (Campaign.Driver.falsifications s);
  check int "timing histogram covers every scenario" 25
    (Util.Hist.count s.stat_hist);
  check bool "per-oracle table covers the lattice" true
    (List.length s.per_oracle = List.length Campaign.Oracle.all)

let test_spec_streams_split_invariant () =
  let cfg = { Campaign.Driver.default_config with seed = 11; count = 40 } in
  let long = Campaign.Driver.spec_streams cfg in
  let short = Campaign.Driver.spec_streams { cfg with count = 12 } in
  List.iteri
    (fun i (s : Workload.Generator.spec) ->
      check string
        (Printf.sprintf "spec %d independent of count" i)
        s.s_name
        (List.nth long i).Workload.Generator.s_name)
    short

(* --- ablations: the campaign must detect seeded unsoundness ---------- *)

let ablated_run =
  lazy
    (Campaign.Driver.run
       {
         Campaign.Driver.default_config with
         seed = 42;
         count = 60;
         oracles = [ Campaign.Oracle.Validity; Campaign.Oracle.Demand ];
         ablation = Campaign.Oracle.Absint_demand;
       })

let test_ablation_detected () =
  let s = Lazy.force ablated_run in
  check bool "halved absint bounds are falsified" true
    (Campaign.Driver.falsifications s > 0);
  List.iter
    (fun (r : Campaign.Driver.report_finding) ->
      check bool "ablated finding hits the demand oracle" true
        (r.finding.oracle = Campaign.Oracle.Demand))
    s.findings

let test_rta_ablation_detected () =
  let s =
    Campaign.Driver.run
      {
        Campaign.Driver.default_config with
        seed = 42;
        count = 60;
        oracles = [ Campaign.Oracle.Validity; Campaign.Oracle.Rta_sim ];
        ablation = Campaign.Oracle.Rta_blocking;
      }
  in
  check bool "dropped blocking terms are falsified" true
    (Campaign.Driver.falsifications s > 0)

let test_mem_ablation_detected () =
  let s =
    Campaign.Driver.run
      {
        Campaign.Driver.default_config with
        seed = 42;
        count = 60;
        oracles = [ Campaign.Oracle.Validity; Campaign.Oracle.Mem ];
        ablation = Campaign.Oracle.Mem_peak;
      }
  in
  check bool "halved peak-live bounds are falsified" true
    (Campaign.Driver.falsifications s > 0);
  List.iter
    (fun (r : Campaign.Driver.report_finding) ->
      check bool "ablated finding hits the mem oracle" true
        (r.finding.oracle = Campaign.Oracle.Mem))
    s.findings

(* --- shrinking -------------------------------------------------------- *)

let test_shrink () =
  let s = Lazy.force ablated_run in
  match s.findings with
  | [] -> fail "ablated run produced no findings to shrink"
  | r :: _ ->
    let specs =
      Campaign.Driver.spec_streams { s.config with count = r.finding.index + 1 }
    in
    let spec = List.nth specs r.finding.index in
    let out =
      Campaign.Shrink.run ~oracle:r.finding.oracle
        ~ablation:Campaign.Oracle.Absint_demand ~index:r.finding.index spec
    in
    check bool "no growth" true
      (out.tasks_after <= out.tasks_before
      && out.segs_after <= out.segs_before);
    check bool "some evaluations spent" true (out.evals > 0);
    (* the shrunk spec must still falsify the same oracle *)
    let e =
      Campaign.Eval.run
        ~oracles:[ Campaign.Oracle.Validity; Campaign.Oracle.Demand ]
        ~ablation:Campaign.Oracle.Absint_demand ~index:r.finding.index out.spec
    in
    check bool "shrunk spec still falsifies" true
      (List.exists
         (fun (f : Campaign.Oracle.finding) -> f.oracle = r.finding.oracle)
         e.findings)

(* --- reports ---------------------------------------------------------- *)

let test_sarif_shape () =
  let clean = Lazy.force small_run in
  let sarif = Campaign.Report.to_sarif clean in
  check bool "sarif version" true (contains sarif {|"version":"2.1.0"|});
  List.iter
    (fun tool ->
      check bool (tool ^ " run present") true
        (contains sarif (Printf.sprintf {|"name":%S|} tool)))
    [ "emeralds-lint"; "emeralds-absint"; "emeralds-mc"; "emeralds-campaign" ];
  check bool "clean runs carry no results" true
    (not (contains sarif {|"ruleId":"campaign/|}));
  let bad = Lazy.force ablated_run in
  let sarif = Campaign.Report.to_sarif bad in
  check bool "falsifications become results" true
    (contains sarif {|"ruleId":"campaign/demand"|})

let test_json_and_text () =
  let s = Lazy.force small_run in
  let json = Campaign.Report.to_json s in
  List.iter
    (fun needle -> check bool needle true (contains json needle))
    [ {|"scenarios": 25|}; {|"falsifications": 0|}; {|"per_oracle"|} ];
  let text = Campaign.Report.render_text s in
  check bool "text mentions scenario count" true (contains text "25");
  check bool "text mentions oracles" true (contains text "rta-sim")

let suite =
  [
    test_case "oracle names round-trip" `Quick test_oracle_names;
    test_case "falsified scenarios stay fixed" `Quick test_replay_falsified;
    test_case "small campaign runs clean" `Quick test_small_campaign_clean;
    test_case "spec stream is split-invariant" `Quick
      test_spec_streams_split_invariant;
    test_case "absint ablation is detected" `Quick test_ablation_detected;
    test_case "rta ablation is detected" `Quick test_rta_ablation_detected;
    test_case "mem ablation is detected" `Quick test_mem_ablation_detected;
    test_case "falsifications shrink" `Quick test_shrink;
    test_case "sarif report shape" `Quick test_sarif_shape;
    test_case "json and text reports" `Quick test_json_and_text;
  ]
