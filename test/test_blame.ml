(* Per-job blame attribution: the conservation law (components sum
   exactly to each job's observed response), attachment invisibility,
   and cross-validation of each empirical component against its
   analytical bound. *)

open Alcotest

let ms = Model.Time.ms

let fuzz ?(count = 50) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let run_with_blame ?(spec = Emeralds.Sched.Rm) ?enforcement ?input_seed
    ?(horizon = ms 200) (scenario : Workload.Scenario.t) =
  let b =
    Obs.Blame.create ~tasks:(Obs.Blame.of_taskset scenario.taskset) ()
  in
  let k =
    Emeralds.Kernel.create ~cost:Sim.Cost.m68040 ~spec
      ~taskset:scenario.taskset ~programs:scenario.programs ?input_seed ()
  in
  (match enforcement with
  | Some _ -> Emeralds.Kernel.set_enforcement k enforcement
  | None -> ());
  Obs.Blame.attach b (Emeralds.Kernel.probe k);
  Emeralds.Kernel.run k ~until:horizon;
  (b, k)

(* Every preset, every job: zero residual, and at least one job closed
   so the check is not vacuous. *)
let test_conservation_presets () =
  List.iter
    (fun name ->
      let scenario = Option.get (Workload.Scenario.make name) in
      let b, _ = run_with_blame scenario in
      let total_jobs =
        List.fold_left
          (fun acc (s : Obs.Blame.task_summary) -> acc + s.s_jobs)
          0 (Obs.Blame.summaries b)
      in
      check bool (name ^ " closed jobs") true (total_jobs > 0);
      check int (name ^ " conservation") 0 (Obs.Blame.residual_violations b);
      List.iter
        (fun (s : Obs.Blame.task_summary) ->
          check int
            (Printf.sprintf "%s tau%d max residual" name s.s_id)
            0 s.s_max_abs_residual)
        (Obs.Blame.summaries b))
    Workload.Scenario.names

(* Attaching the attributor must not perturb the kernel: the trace is
   bit-identical with and without the subscriber. *)
let test_attach_invisible () =
  (* one scenario for both runs: object ids are drawn from a global
     counter, so two [branchy] realizations would differ in pool id *)
  let scenario = Option.get (Workload.Scenario.make "branchy") in
  let run attach =
    let k =
      Emeralds.Kernel.create ~cost:Sim.Cost.m68040 ~spec:Emeralds.Sched.Rm
        ~taskset:scenario.taskset ~programs:scenario.programs ~input_seed:3 ()
    in
    if attach then begin
      let b =
        Obs.Blame.create ~tasks:(Obs.Blame.of_taskset scenario.taskset) ()
      in
      Obs.Blame.attach b (Emeralds.Kernel.probe k)
    end;
    Emeralds.Kernel.run k ~until:(ms 100);
    Sim.Trace.to_csv (Emeralds.Kernel.trace k)
  in
  check string "trace bit-identical with blame attached" (run false)
    (run true)

(* Conservation across schedulers, enforcement policies and input
   seeds on randomized presets. *)
let gen_blame_case =
  QCheck2.Gen.(
    let* preset = oneofl Workload.Scenario.names in
    let* spec = oneofl [ `Rm; `Edf; `Csd 2 ] in
    let* enforce = oneofl [ `None; `Notify; `Kill ] in
    let* input_seed = int_range 0 1000 in
    return (preset, spec, enforce, input_seed))

let prop_conservation =
  fuzz ~count:40 "conservation across schedulers and enforcement"
    gen_blame_case
    (fun (preset, spec, enforce, input_seed) ->
      let scenario = Option.get (Workload.Scenario.make preset) in
      let spec =
        match spec with
        | `Rm -> Emeralds.Sched.Rm
        | `Edf -> Emeralds.Sched.Edf
        | `Csd n -> Emeralds.Sched.Csd [ n ]
      in
      let enforcement =
        match enforce with
        | `None -> None
        | `Notify ->
          Some
            {
              Emeralds.Kernel.budget_of =
                (fun (t : Model.Task.t) -> Some t.wcet);
              policy = Emeralds.Kernel.Notify_only;
              miss = Emeralds.Kernel.Miss_record;
              shed_one_in = None;
            }
        | `Kill ->
          Some
            {
              Emeralds.Kernel.budget_of =
                (fun (t : Model.Task.t) -> Some t.wcet);
              policy = Emeralds.Kernel.Kill_job;
              miss = Emeralds.Kernel.Miss_record;
              shed_one_in = None;
            }
      in
      let b, _ =
        run_with_blame ~spec ?enforcement ~input_seed ~horizon:(ms 150)
          scenario
      in
      Obs.Blame.residual_violations b = 0)

(* Per-term domination: every empirical blame component stays within
   its analytical term — absint demand for execution, the RTA
   decomposition (plus one carry-in job) per interference rank, the
   lint blocking term, and the Table-1 overhead budget at the RTA
   fixpoint.  Mirrors the campaign's blame oracle as a direct
   property over presets and input seeds. *)
let rta_eligible (sc : Workload.Scenario.t) =
  Array.map
    (fun (t : Model.Task.t) ->
      let ok = ref true in
      Emeralds.Program.iter_leaves
        (fun instr ->
          match instr with
          | Emeralds.Types.Wait _ | Emeralds.Types.Timed_wait _
          | Emeralds.Types.Recv _ | Emeralds.Types.Send _
          | Emeralds.Types.Delay _ ->
            ok := false
          | _ -> ())
        (sc.programs t);
      !ok)
    (Model.Taskset.tasks sc.taskset)

let gen_domination_case =
  QCheck2.Gen.(
    let* preset = oneofl Workload.Scenario.names in
    let* input_seed = int_range 0 1000 in
    return (preset, input_seed))

let prop_domination =
  fuzz ~count:25 "every component dominated by its analytical term"
    gen_domination_case
    (fun (preset, input_seed) ->
      let scenario = Option.get (Workload.Scenario.make preset) in
      let tasks = Model.Taskset.tasks scenario.taskset in
      let ctx =
        Lint.Ctx.make ~irq_signals:scenario.irq_signals
          ~irq_writes:scenario.irq_writes ~taskset:scenario.taskset
          ~programs:scenario.programs ()
      in
      let blocking = Lint.Blocking_terms.blocking_terms ctx in
      let rows =
        Analysis.Overhead.inflate ~cost:Sim.Cost.m68040
          ~spec:Emeralds.Sched.Rm scenario.taskset
      in
      let eligible = rta_eligible scenario in
      let rep = Absint.Report.analyze scenario in
      let b, _ = run_with_blame ~input_seed ~horizon:(ms 150) scenario in
      Array.for_all Fun.id
        (Array.mapi
           (fun i (t : Model.Task.t) ->
             match
               ( Obs.Blame.summary b ~tid:t.id,
                 Analysis.Rta.response_time ~blocking ~tasks:rows i )
             with
             | Some s, Some rstar when eligible.(i) && s.s_jobs > 0 ->
               let exec_ok =
                 match
                   Array.find_opt
                     (fun (tb : Absint.Report.task_bound) ->
                       tb.task.id = t.id)
                     rep.tasks
                 with
                 | Some tb -> (
                   match Absint.Itv.hi_int tb.summary.exec with
                   | Some hi -> s.s_max_exec <= hi
                   | None -> true)
                 | None -> true
               in
               let interference_ok =
                 match Analysis.Rta.decompose ~blocking ~tasks:rows i with
                 | Some dec ->
                   List.for_all
                     (fun (j, v) ->
                       let _, _, cj = rows.(j) in
                       v <= dec.Analysis.Rta.dec_interference.(j) + cj)
                     s.s_max_interference
                 | None -> true
               in
               let blocking_ok = s.s_max_blocking_total <= blocking.(i) in
               let overhead_ok =
                 s.s_max_overhead_total
                 <= Analysis.Overhead.job_budget ~cost:Sim.Cost.m68040
                      ~spec:Emeralds.Sched.Rm ~taskset:scenario.taskset
                      ~programs:(Array.map scenario.programs tasks)
                      ~rank:i ~response:rstar ~irqs:s.s_max_irqs
               in
               exec_ok && interference_ok && blocking_ok && overhead_ok
             | _ -> true)
           tasks))

(* Seeded priority inversion: the worst job of the high-priority task
   must blame the contended semaphore, and blocking must dominate. *)
let test_inversion_blames_sem () =
  let scenario = Workload.Scenario.inversion_demo () in
  let b, k = run_with_blame ~horizon:(ms 60) scenario in
  check bool "the demo actually misses" true
    (Sim.Trace.deadline_misses (Emeralds.Kernel.trace k) > 0);
  check int "conservation" 0 (Obs.Blame.residual_violations b);
  let victim =
    List.find
      (fun (s : Obs.Blame.task_summary) -> s.s_rank = 0)
      (Obs.Blame.summaries b)
  in
  let w = Option.get victim.s_worst in
  check bool "blocking attributed to a real semaphore" true
    (List.exists (fun (sem, v) -> sem >= 0 && v > 0) w.b_blocking);
  match Obs.Blame.dominant w with
  | Obs.Blame.Blocking sem, _ -> check bool "dominant sem is real" true (sem >= 0)
  | c, _ ->
    failf "expected Blocking dominant, got %s" (Obs.Blame.cause_label c)

let suite =
  [
    test_case "conservation on every preset" `Quick test_conservation_presets;
    test_case "attachment is trace-invisible" `Quick test_attach_invisible;
    prop_conservation;
    prop_domination;
    test_case "inversion demo blames the semaphore" `Quick
      test_inversion_blames_sem;
  ]
