(* The static verifier: one negative test per diagnostic kind, the
   shipped scenarios linting clean, the code-parser differential check,
   blocking-term extraction, and the soundness cross-validation of
   static blocking terms against simulated traces. *)

open Alcotest
open Emeralds

let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~count ~name gen law)

let ms = Model.Time.ms
let us = Model.Time.us

(* A context from a list of programs: task i+1 gets the i-th program,
   periods 10ms, 20ms, ... so list order is RM-rank order. *)
let ctx_of ?irq_signals ?irq_writes progs =
  let arr = Array.of_list progs in
  let taskset =
    Model.Taskset.of_list
      (List.init (Array.length arr) (fun i ->
           Model.Task.make ~id:(i + 1)
             ~period:(ms (10 * (i + 1)))
             ~wcet:(ms 1) ()))
  in
  Lint.Ctx.make ?irq_signals ?irq_writes ~taskset
    ~programs:(fun (t : Model.Task.t) -> arr.(t.id - 1))
    ()

let findings_of check severity diags =
  List.filter
    (fun (d : Lint.Diag.t) -> d.check = check && d.severity = severity)
    diags

let count_errors check diags =
  List.length (findings_of check Lint.Diag.Error diags)

(* ------------------------------------------------------------------ *)
(* one negative example per diagnostic kind *)

let test_lock_balance () =
  let s = Objects.sem () in
  let open Program in
  let diags = Lint.Report.run (ctx_of [ [ release s ] ]) in
  check int "release without acquire" 1 (count_errors "lock-balance" diags);
  let diags =
    Lint.Report.run
      (ctx_of [ [ acquire s; acquire s; release s; release s ] ])
  in
  check int "double acquire of a mutex" 1 (count_errors "lock-balance" diags);
  (match findings_of "lock-balance" Lint.Diag.Error diags with
  | [ d ] -> check (option int) "at the second acquire" (Some 1) d.pc
  | _ -> fail "expected exactly one finding");
  let diags =
    Lint.Report.run (ctx_of [ [ acquire s; compute (us 100) ] ])
  in
  check int "held at job end" 1 (count_errors "lock-balance" diags);
  (* a counting semaphore really does have several units *)
  let c2 = Objects.sem ~initial:2 () in
  let diags =
    Lint.Report.run
      (ctx_of [ [ acquire c2; acquire c2; release c2; release c2 ] ])
  in
  check int "two units of a counting sem are fine" 0
    (count_errors "lock-balance" diags)

let test_alloc_discipline () =
  let p = Objects.pool ~block_bytes:32 ~capacity:4 () in
  let open Program in
  (* balanced alloc/free is clean *)
  let diags =
    Lint.Report.run
      (ctx_of [ [ alloc p; alloc p; compute (us 100); free p; free p ] ])
  in
  check int "balanced use is clean" 0 (count_errors "alloc-discipline" diags);
  (* a block held at job end is a leak *)
  let diags =
    Lint.Report.run (ctx_of [ [ alloc p; alloc p; compute (us 100); free p ] ])
  in
  check int "leak at job end" 1 (count_errors "alloc-discipline" diags);
  (* freeing a block the job does not hold *)
  let diags = Lint.Report.run (ctx_of [ [ alloc p; free p; free p ] ]) in
  check int "double free" 1 (count_errors "alloc-discipline" diags);
  (match findings_of "alloc-discipline" Lint.Diag.Error diags with
  | [ d ] -> check (option int) "at the second free" (Some 2) d.pc
  | _ -> fail "expected exactly one finding");
  (* per-task peak above the pool's capacity: denial is certain *)
  let tiny = Objects.pool ~block_bytes:16 ~capacity:1 () in
  let greedy = [ alloc tiny; alloc tiny; free tiny; free tiny ] in
  let diags = Lint.Report.run (ctx_of [ greedy ]) in
  check int "peak above capacity" 1 (count_errors "alloc-discipline" diags);
  (* summed peaks above capacity across tasks: a warning only *)
  let shared = Objects.pool ~block_bytes:16 ~capacity:2 () in
  let two = [ alloc shared; alloc shared; free shared; free shared ] in
  let diags = Lint.Report.run (ctx_of [ two; two ]) in
  check int "no per-task error" 0 (count_errors "alloc-discipline" diags);
  check int "concurrent oversubscription warns" 1
    (List.length (findings_of "alloc-discipline" Lint.Diag.Warning diags));
  (* the demo scenarios carry exactly the seeded defects *)
  let of_scenario (s : Workload.Scenario.t) =
    Lint.Report.run
      (Lint.Ctx.make ~irq_signals:s.irq_signals ~irq_writes:s.irq_writes
         ~taskset:s.taskset ~programs:s.programs ())
  in
  check int "leak demo flagged" 1
    (count_errors "alloc-discipline" (of_scenario (Workload.Scenario.leak_demo ())));
  check int "double-free demo flagged" 1
    (count_errors "alloc-discipline"
       (of_scenario (Workload.Scenario.double_free_demo ())));
  check int "alloc demo clean" 0
    (count_errors "alloc-discipline" (of_scenario (Workload.Scenario.alloc_demo ())))

let test_deadlock () =
  let a = Objects.sem () and b = Objects.sem () in
  let open Program in
  let nest x y c = [ acquire x; compute c; acquire y; release y; release x ] in
  let diags =
    Lint.Report.run
      (ctx_of [ nest a b (us 100); nest b a (us 100) ])
  in
  check int "opposite nesting orders form a cycle" 1
    (count_errors "deadlock" diags);
  let diags =
    Lint.Report.run
      (ctx_of [ nest a b (us 100); nest a b (us 200) ])
  in
  check int "consistent nesting order is fine" 0
    (count_errors "deadlock" diags)

let test_hygiene () =
  let m = Objects.sem () and cond = Objects.waitq () in
  let open Program in
  (* the waiter holds the monitor lock; the only signaller signals
     inside a critical section on that same lock: certain deadlock *)
  let diags =
    Lint.Report.run
      (ctx_of
         [
           [ acquire m; wait cond; release m ];
           [ acquire m; signal cond; release m ];
         ])
  in
  check int "condvar misuse without releasing the mutex" 1
    (count_errors "blocking-hygiene" diags);
  (* the correct pattern releases first (Program.condition_wait) *)
  let diags =
    Lint.Report.run
      (ctx_of
         [
           (acquire m :: condition_wait cond m) @ [ release m ];
           [ acquire m; signal cond; release m ];
         ])
  in
  check int "condition_wait is clean" 0 (count_errors "blocking-hygiene" diags);
  let diags =
    Lint.Report.run
      (ctx_of [ [ acquire m; delay (us 300); release m ] ])
  in
  check int "delay while holding is only a warning" 0
    (count_errors "blocking-hygiene" diags);
  check int "  ... but is reported" 1
    (List.length (findings_of "blocking-hygiene" Lint.Diag.Warning diags))

let test_state_discipline () =
  let sm = State_msg.create ~depth:2 ~words:2 in
  let open Program in
  let diags =
    Lint.Report.run
      (ctx_of
         [
           [ state_write sm (words 2) ];
           [ state_write sm (words 2) ];
         ])
  in
  check int "two writers break the single-writer rule" 1
    (count_errors "state-discipline" diags);
  (* an IRQ writer counts as a writer too *)
  let diags =
    Lint.Report.run
      (ctx_of ~irq_writes:[ sm ] [ [ state_write sm (words 2) ] ])
  in
  check int "task + IRQ writer also breaks it" 1
    (count_errors "state-discipline" diags);
  let diags =
    Lint.Report.run (ctx_of [ [ state_write sm (words 3) ] ])
  in
  check int "payload size mismatch" 1 (count_errors "state-discipline" diags);
  let diags =
    Lint.Report.run
      (ctx_of ~irq_writes:[ sm ] [ [ state_read sm; compute (us 50) ] ])
  in
  check int "single IRQ writer, task reader: clean" 0
    (count_errors "state-discipline" diags)

let test_liveness () =
  let wq = Objects.waitq () and mb = Objects.mailbox ~capacity:2 () in
  let open Program in
  let diags = Lint.Report.run (ctx_of [ [ wait wq ] ]) in
  check int "wait with no signaller blocks forever" 1
    (count_errors "liveness" diags);
  let diags =
    Lint.Report.run (ctx_of ~irq_signals:[ wq ] [ [ wait wq ] ])
  in
  check int "an IRQ signaller satisfies the wait" 0
    (count_errors "liveness" diags);
  let diags = Lint.Report.run (ctx_of [ [ timed_wait wq (us 500) ] ]) in
  check int "timed waits survive on timeouts (warning only)" 0
    (count_errors "liveness" diags);
  let diags = Lint.Report.run (ctx_of [ [ recv mb ] ]) in
  check int "receivers with no senders" 1 (count_errors "liveness" diags);
  let diags =
    Lint.Report.run (ctx_of [ [ send mb (words 1) ]; [ recv mb ] ])
  in
  check int "paired mailbox is clean" 0 (count_errors "liveness" diags)

(* ------------------------------------------------------------------ *)
(* the shipped scenarios lint clean *)

let test_scenarios_clean () =
  List.iter
    (fun (s : Workload.Scenario.t) ->
      let ctx =
        Lint.Ctx.make ~irq_signals:s.irq_signals ~irq_writes:s.irq_writes
          ~taskset:s.taskset ~programs:s.programs ()
      in
      let diags = Lint.Report.run ctx in
      check int (s.name ^ " has no lint errors") 0 (Lint.Diag.errors diags))
    (Workload.Scenario.all ());
  (* the pure-compute workload has nothing to even warn about *)
  match Workload.Scenario.make "table2" with
  | Some s ->
    let ctx =
      Lint.Ctx.make ~taskset:s.taskset ~programs:s.programs ()
    in
    check int "table2 has no findings at all" 0
      (List.length (Lint.Report.run ctx))
  | None -> fail "table2 scenario missing"

(* ------------------------------------------------------------------ *)
(* code-parser differential: derive_hints vs an independent reference *)

(* Reference semantics, written as a spec rather than a scan: the hint
   at a blocking, non-acquire position is [Some s] iff the first
   blocking instruction strictly after it is [Acquire s]. *)
let reference_hints program =
  let n = Array.length program in
  let blocking_after i =
    let rest = Array.to_list (Array.sub program (i + 1) (n - i - 1)) in
    List.find_opt Program.is_blocking rest
  in
  Array.mapi
    (fun i instr ->
      if not (Program.is_blocking instr) then None
      else
        match instr with
        | Types.Acquire _ -> None
        | _ -> (
          match blocking_after i with
          | Some (Types.Acquire s) -> Some s
          | _ -> None))
    program

let sem_ids hints =
  Array.map (Option.map (fun (s : Types.sem) -> s.Types.sem_id)) hints

(* Deterministic random programs over a small shared vocabulary. *)
let gen_instr_program =
  QCheck2.Gen.(int_range 1 100_000 >|= fun seed -> seed)

let random_program rng =
  let a = Objects.sem () and b = Objects.sem () in
  let wq = Objects.waitq () and mb = Objects.mailbox ~capacity:2 () in
  let sm = State_msg.create ~depth:2 ~words:1 in
  let len = Util.Rng.int_in rng ~lo:0 ~hi:12 in
  Array.init len (fun _ ->
      match Util.Rng.int rng 11 with
      | 0 -> Program.compute (us 100)
      | 1 -> Program.acquire a
      | 2 -> Program.acquire b
      | 3 -> Program.release a
      | 4 -> Program.wait wq
      | 5 -> Program.timed_wait wq (us 200)
      | 6 -> Program.signal wq
      | 7 -> Program.send mb [| 1 |]
      | 8 -> Program.recv mb
      | 9 -> Program.state_read sm
      | 10 -> Program.delay (us 150)
      | _ -> Program.state_write sm [| 2 |])

let prop_hints_differential =
  qtest "derive_hints matches the reference on random programs"
    gen_instr_program (fun seed ->
      let program = random_program (Util.Rng.create ~seed) in
      sem_ids (Program.derive_hints program) = sem_ids (reference_hints program))

let test_hints_edges () =
  let s = Objects.sem () and wq = Objects.waitq () in
  let open Program in
  (* the hint propagates through a non-blocking prefix ... *)
  let p = [| wait wq; signal wq; compute (us 10); acquire s; release s |] in
  let hints = sem_ids (derive_hints p) in
  check (option int) "hint through non-blocking prefix"
    (Some s.Types.sem_id) hints.(0);
  (* ... but not through another blocking call *)
  let p = [| wait wq; delay (us 10); acquire s; release s |] in
  check (option int) "an intervening blocking call kills the hint" None
    (sem_ids (derive_hints p)).(0);
  (* a trailing blocking call has nothing to hint at *)
  let p = [| compute (us 10); wait wq |] in
  check (option int) "trailing blocking call" None
    (sem_ids (derive_hints p)).(1);
  (* condition_wait's wait carries the re-acquire hint *)
  let p = Array.of_list (condition_wait wq s) in
  check (option int) "condition_wait hints the re-acquire"
    (Some s.Types.sem_id)
    (sem_ids (derive_hints p)).(1);
  (* a timed wait hints just like an untimed one: the timeout path
     re-joins at the same next acquire *)
  let p = [| timed_wait wq (us 250); acquire s; release s |] in
  check (option int) "timed_wait followed by acquire"
    (Some s.Types.sem_id)
    (sem_ids (derive_hints p)).(0);
  (* broadcast never blocks, so it neither gets a hint nor blocks one
     from propagating past it *)
  let p = [| wait wq; broadcast wq; compute (us 5) |] in
  let hints = sem_ids (derive_hints p) in
  check (option int) "broadcast with nothing blocking after: no hint" None
    hints.(0);
  check (option int) "broadcast itself is not a blocking position" None
    hints.(1);
  let p = [| wait wq; broadcast wq; acquire s; release s |] in
  check (option int) "the hint propagates through a broadcast"
    (Some s.Types.sem_id)
    (sem_ids (derive_hints p)).(0);
  (* a blocking call before condition_wait sees the wait, not the
     re-acquire beyond it; the wait itself still hints the re-acquire *)
  let p = Array.of_list (delay (us 20) :: condition_wait wq s) in
  let hints = sem_ids (derive_hints p) in
  check (option int) "condition_wait's wait shields earlier hints" None
    hints.(0);
  check (option int) "while the wait still hints its own re-acquire"
    (Some s.Types.sem_id) hints.(2)

(* ------------------------------------------------------------------ *)
(* blocking-term extraction *)

let test_blocking_sections () =
  let a = Objects.sem () and b = Objects.sem () in
  let wq = Objects.waitq () in
  let open Program in
  let ctx =
    ctx_of
      [
        (* nested: inner CS time counts in the outer section *)
        [
          acquire a; compute (us 100); acquire b; compute (us 50); release b;
          compute (us 25); release a;
        ];
        (* a wait inside the CS contributes nothing (unbounded) *)
        [ acquire b; wait wq; compute (us 30); release b; signal wq ];
      ]
  in
  let sections = Lint.Blocking_terms.critical_sections ctx in
  let dur rank sem_id =
    List.filter_map
      (fun (cs : Analysis.Blocking.critical_section) ->
        if cs.task_rank = rank && cs.sem = sem_id then Some cs.duration
        else None)
      sections
  in
  check (list int) "outer section includes nested time" [ us 175 ]
    (dur 0 a.Types.sem_id);
  check (list int) "inner section" [ us 50 ] (dur 0 b.Types.sem_id);
  check (list int) "unbounded blocking is excluded" [ us 30 ]
    (dur 1 b.Types.sem_id);
  (* an unreleased section still yields a (lock-balance-flagged) term *)
  let ctx = ctx_of [ [ acquire a; compute (us 40) ] ] in
  check (list int) "unclosed section runs to job end" [ us 40 ]
    (List.filter_map
       (fun (cs : Analysis.Blocking.critical_section) ->
         if cs.sem = a.Types.sem_id then Some cs.duration else None)
       (Lint.Blocking_terms.critical_sections ctx));
  (* per-sem summary: ceiling is the best rank that locks it *)
  let ctx =
    ctx_of
      [
        [ compute (us 10) ];
        Program.critical a (us 200);
        Program.critical a (us 900);
      ]
  in
  check (list (triple int int int)) "per-sem ceiling and worst CS"
    [ (a.Types.sem_id, 1, us 900) ]
    (Lint.Blocking_terms.per_sem ctx)

let test_blocking_feeds_rta () =
  match Workload.Scenario.make "engine" with
  | None -> fail "engine scenario missing"
  | Some s ->
    let ctx =
      Lint.Ctx.make ~irq_writes:s.irq_writes ~taskset:s.taskset
        ~programs:s.programs ()
    in
    let blocking = Lint.Blocking_terms.blocking_terms ctx in
    let rows =
      Array.map
        (fun (t : Model.Task.t) -> (t.period, t.deadline, t.wcet))
        (Model.Taskset.tasks s.taskset)
    in
    check bool "some rank has a non-zero static blocking term" true
      (Array.exists (fun b -> b > 0) blocking);
    Array.iteri
      (fun i _ ->
        let plain = Analysis.Rta.response_time ~tasks:rows i in
        let blocked =
          Analysis.Rta.response_time ~blocking ~tasks:rows i
        in
        match (plain, blocked) with
        | Some r, Some rb ->
          check bool
            (Printf.sprintf "R%d with blocking is no smaller" i)
            true
            (rb >= r + blocking.(i));
          if blocking.(i) = 0 then
            check int (Printf.sprintf "R%d unchanged when B=0" i) r rb
        | _ -> fail "engine preset should be RTA-feasible both ways")
      rows;
    check bool "engine stays feasible with derived blocking terms" true
      (Analysis.Rta.feasible ~blocking rows)

(* ------------------------------------------------------------------ *)
(* cross-validation: static terms bound observed blocking *)

(* Under zero kernel cost and RM, a rank-0 job that blocks on a mutex
   waits exactly for the remainder of the holder's critical section:
   the holder inherits rank-0 priority, so nothing preempts it.  That
   observed wait must never exceed the statically extracted B0. *)
let test_blocking_cross_validation () =
  let s = Objects.sem ~kind:Types.Emeralds () in
  let open Program in
  let progs tid =
    match tid with
    | 1 -> [ acquire s; compute (ms 1); release s; compute (us 500) ]
    | 2 -> [ compute (ms 2) ]
    | _ -> [ acquire s; compute (ms 3); release s; compute (ms 1) ]
  in
  let taskset =
    Model.Taskset.of_list
      [
        (* phase 1ms: released mid-way through tau3's critical section *)
        Model.Task.make ~id:1 ~phase:(ms 1) ~period:(ms 20) ~wcet:(ms 2) ();
        Model.Task.make ~id:2 ~period:(ms 30) ~wcet:(ms 2) ();
        Model.Task.make ~id:3 ~period:(ms 50) ~wcet:(ms 5) ();
      ]
  in
  let programs (t : Model.Task.t) = progs t.id in
  let ctx = Lint.Ctx.make ~taskset ~programs () in
  check int "the scenario itself lints clean" 0
    (Lint.Diag.errors (Lint.Report.run ctx));
  let static_b = Lint.Blocking_terms.blocking_terms ctx in
  check int "static B0 is tau3's full critical section" (ms 3) static_b.(0);
  let k =
    Kernel.create ~cost:Sim.Cost.zero ~spec:Sched.Rm ~taskset ~programs ()
  in
  Kernel.run k ~until:(ms 200);
  (* longest observed Sem_blocked -> Sem_acquired gap of the rank-0 task *)
  let blocked_at = ref None and max_wait = ref 0 in
  List.iter
    (fun (st : Sim.Trace.stamped) ->
      match st.entry with
      | Sim.Trace.Sem_blocked { tid = 1; _ } -> blocked_at := Some st.at
      | Sim.Trace.Sem_acquired { tid = 1; _ } -> (
        match !blocked_at with
        | Some t0 ->
          max_wait := max !max_wait (st.at - t0);
          blocked_at := None
        | None -> ())
      | _ -> ())
    (Sim.Trace.entries (Kernel.trace k));
  check bool "tau1 actually blocked at least once" true (!max_wait > 0);
  check bool
    (Printf.sprintf "observed blocking %dns within static bound %dns"
       !max_wait static_b.(0))
    true
    (!max_wait <= static_b.(0))

(* ------------------------------------------------------------------ *)
(* dead-branch: structurally useless control flow *)

let test_dead_branch () =
  let open Program in
  let warns diags =
    findings_of "dead-branch" Lint.Diag.Warning diags
    @ findings_of "dead-branch" Lint.Diag.Info diags
  in
  let diags =
    Lint.Report.run
      (ctx_of [ [ if_input [ compute (us 100) ] [ compute (us 100) ] ] ])
  in
  check int "identical arms flagged" 1 (List.length (warns diags));
  check int "never as an error (advisory only)" 0
    (count_errors "dead-branch" diags);
  (* the warning routes into SARIF with its rule id and level *)
  let sarif = Lint.Sarif.of_diags diags in
  check bool "SARIF carries the dead-branch rule" true
    (List.exists
       (fun (r : Lint.Sarif.result) ->
         r.rule_id = "dead-branch" && r.level = Lint.Sarif.Warning)
       sarif);
  let diags = Lint.Report.run (ctx_of [ [ if_input [] [] ] ]) in
  check int "two empty arms flagged" 1 (List.length (warns diags));
  let diags =
    Lint.Report.run (ctx_of [ [ repeat 0 [ compute (us 100) ] ] ])
  in
  check int "unreachable repeat-0 body flagged" 1 (List.length (warns diags));
  let diags = Lint.Report.run (ctx_of [ [ repeat 3 [] ] ]) in
  check int "empty loop body noted" 1 (List.length (warns diags));
  (* nested dead decisions are still found *)
  let diags =
    Lint.Report.run
      (ctx_of
         [
           [
             repeat 2
               [ if_input [ compute (us 50) ] [ compute (us 50) ] ];
           ];
         ])
  in
  check int "dead branch inside a live loop" 1 (List.length (warns diags));
  (* live control flow stays silent *)
  let diags =
    Lint.Report.run
      (ctx_of
         [
           [
             if_input [ compute (us 100) ] [ compute (us 200) ];
             repeat 3 [ compute (us 50) ];
           ];
         ])
  in
  check int "live branch and loop not flagged" 0 (List.length (warns diags))

let suite =
  [
    test_case "lock balance diagnostics" `Quick test_lock_balance;
    test_case "alloc discipline diagnostics" `Quick test_alloc_discipline;
    test_case "lock-order deadlock detection" `Quick test_deadlock;
    test_case "blocking hygiene" `Quick test_hygiene;
    test_case "state-message discipline" `Quick test_state_discipline;
    test_case "liveness pairing" `Quick test_liveness;
    test_case "shipped scenarios lint clean" `Quick test_scenarios_clean;
    prop_hints_differential;
    test_case "code-parser hint edge cases" `Quick test_hints_edges;
    test_case "blocking-term extraction" `Quick test_blocking_sections;
    test_case "derived terms feed RTA" `Quick test_blocking_feeds_rta;
    test_case "static blocking bounds simulated blocking" `Quick
      test_blocking_cross_validation;
    test_case "dead-branch diagnostics" `Quick test_dead_branch;
  ]
